package gpusim

import (
	"fmt"
	"math"
	"sync/atomic"
)

const (
	timeEps = 1e-9
	// minSpeed bounds how far contention can slow an op, guaranteeing
	// forward progress in the event loop even under extreme
	// oversubscription.
	minSpeed = 1e-3

	// ContentionExponent makes fair-share slowdown superlinear when a
	// resource is oversubscribed: factor = (1/load)^φ. Oversubscribed
	// SMs and memory systems lose aggregate throughput to cache
	// thrashing and scheduling overhead, which is why unmanaged
	// co-running (the MPS baseline) hurts more than proportionally
	// (paper Figure 1c: overlapping an oversized kernel inflates MLP
	// latency sharply).
	ContentionExponent = 1.3

	// PriorityBurstFactor inflates a high-priority op's SM load when
	// computing the leftover available to lower priorities. GPUs
	// preempt at thread-block granularity: a training kernel with 70%
	// time-averaged SM use still occupies nearly all SM slots during
	// its bursts, so a low-priority stream sees far less than the
	// time-averaged headroom (this is what starves the CUDA-stream
	// baseline, §8.2).
	PriorityBurstFactor = 2.0
)

// The engine hot path. Every RAP decision (capacity probing, Algorithm 1
// scheduling, MILP-driven fusion evaluation, all figure reproductions)
// replays DAGs through Run, so this file is optimized for event-loop
// throughput under one hard invariant: results are bit-identical to the
// straightforward rebuild-everything implementation preserved in
// engine_reference_test.go. Three structural changes carry the win:
//
//   - Resources live in one dense, kind-major array indexed by
//     kind·NumGPUs+gpu (the single host-CPU slot last) instead of a
//     map[resKey] rebuilt per event. Each op's demands are resolved to
//     dense indices once, at Run start.
//   - Slowdown factors are recomputed incrementally: only resources
//     whose running-user set changed since the previous event are
//     marked dirty and re-derived, and only the speeds of ops touching
//     a dirty resource are refreshed. Per-resource user lists are kept
//     ordered by op start sequence so the recomputed loads sum in
//     exactly the order the full rescan used — float addition is not
//     associative, and bit-identity demands identical orders.
//   - Utilization accounting reuses per-GPU accumulators and tag
//     scratch buffers across events; a TagSM map is allocated only when
//     a segment is actually appended to the timeline.
//
// A non-change worth recording: the next-event horizon is still a linear
// pass over the running set, not an indexed min-heap. The reference
// engine decrements every running op's remaining work by dt·speed on
// every event, and replaying that float sequence exactly requires
// touching every running op per event anyway — a heap keyed on projected
// completion times would compute remaining time as (end − now), which
// rounds differently and breaks bit-identity. The horizon scan shares
// the loop the decrement already pays for.

// rtDemand is one op demand resolved to its dense resource index.
type rtDemand struct {
	idx  int32
	kind resKind
	dem  float64
}

// resLevel is the aggregate demand of one priority level on a resource.
type resLevel struct {
	prio int
	load float64
}

// prioFactor is the slowdown factor granted to one priority level.
type prioFactor struct {
	prio int
	f    float64
}

// resUser is one op currently in its work phase using a resource.
type resUser struct {
	o   *op
	dem float64
}

// resState is the engine's per-resource bookkeeping.
type resState struct {
	// users holds the running-phase users ordered by op start sequence
	// (the order the running slice would enumerate them).
	users []resUser
	// factors caches the per-priority slowdown factors; valid until the
	// user set changes.
	factors []prioFactor
	// levels is recomputation scratch, reused across events.
	levels []resLevel
	dirty  bool
}

func (st *resState) insertUser(o *op, dem float64) {
	users := append(st.users, resUser{})
	i := len(users) - 1
	for i > 0 && users[i-1].o.startSeq > o.startSeq {
		i--
	}
	copy(users[i+1:], users[i:])
	users[i] = resUser{o: o, dem: dem}
	st.users = users
}

func (st *resState) removeUser(o *op) {
	for i := range st.users {
		if st.users[i].o == o {
			st.users = append(st.users[:i], st.users[i+1:]...)
			return
		}
	}
}

// factorFor returns the cached slowdown factor for a priority level; 1
// (no constraint) when the level has no running users.
func (st *resState) factorFor(prio int) float64 {
	for _, pf := range st.factors {
		if pf.prio == prio {
			return pf.f
		}
	}
	return 1
}

// tagGrant accumulates per-tag SM grants for one GPU within one event.
type tagGrant struct {
	tag string
	sm  float64
}

// engine is the per-Run state of the event loop.
type engine struct {
	s       *Sim
	numGPUs int

	// Dense per-(resource-kind × GPU) state; index kind·NumGPUs+gpu,
	// with the host-wide CPU slot at position numResKinds-1 · NumGPUs.
	res   []resState
	dirty []int32 // indices of resources whose user set changed

	// caps is each resource's current capacity (1.0 absent perturbation);
	// capEvents are the pending step changes, time-ordered, consumed via
	// capIdx. Boundaries clamp the event horizon so capacity is constant
	// within every simulated segment.
	caps      []float64
	capEvents []capEvent
	capIdx    int

	// demOff/dems hold every op's demands with pre-resolved dense
	// indices, packed flat: op o's demands are dems[demOff[o]:demOff[o+1]].
	demOff []int32
	dems   []rtDemand

	speeds  []float64
	running []*op
	nextSeq int

	// Reusable buffers.
	finished []*op
	accSM    []float64
	accBW    []float64
	tagAcc   [][]tagGrant

	// stop, when non-nil, is polled once per event; a set flag aborts
	// the run with errEngineCancelled. It is how the raced-engine
	// coordinator cancels the losing engine (see engine_sharded.go).
	stop *atomic.Bool
}

// errEngineCancelled is returned by an engine whose stop flag was set.
// It never escapes Run: the race coordinator only cancels an engine
// after the other one has already produced the (identical) result.
var errEngineCancelled = fmt.Errorf("gpusim: engine cancelled")

// Run executes the accumulated op DAG and returns the timeline. A Sim is
// single-use: Run may only be called once. The engine configured via
// SetEngineOptions never changes the Result — sequential, sharded, and
// raced execution are all bit-identical (see engine_sharded.go).
//
//rap:deterministic
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("gpusim: Sim.Run called twice")
	}
	s.ran = true
	if s.addErr != nil {
		return nil, s.addErr
	}

	// Wire the DAG.
	for _, o := range s.ops {
		seen := make(map[OpID]bool, len(o.deps))
		for _, d := range o.deps {
			if d < 0 || int(d) >= len(s.ops) {
				return nil, fmt.Errorf("gpusim: op %q depends on unknown op %d", o.name, d)
			}
			if d == o.id {
				return nil, fmt.Errorf("gpusim: op %q depends on itself", o.name)
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			s.ops[d].children = append(s.ops[d].children, o.id)
			o.missing++
		}
	}

	return s.execute()
}

func newEngine(s *Sim) *engine {
	g := s.cfg.NumGPUs
	// 5 per-GPU kinds ×g, one CPU slot, then one fabric link per node —
	// zero of those without a multi-node topology, so the layout (and
	// every float trajectory derived from it) is unchanged.
	numRes := numResKinds*g - (g - 1) + s.numFabric
	e := &engine{
		s:       s,
		numGPUs: g,
		res:     make([]resState, numRes),
		dirty:   make([]int32, 0, 32),
		demOff:  make([]int32, len(s.ops)+1),
		speeds:  make([]float64, len(s.ops)),
		accSM:   make([]float64, g),
		accBW:   make([]float64, g),
		tagAcc:  make([][]tagGrant, g),
	}
	e.caps, e.capEvents = compileCapWindows(s)
	total := 0
	for _, o := range s.ops {
		total += len(o.demands)
	}
	e.dems = make([]rtDemand, 0, total)
	for i, o := range s.ops {
		e.demOff[i] = int32(len(e.dems))
		for _, d := range o.demands {
			e.dems = append(e.dems, rtDemand{
				idx:  resIndex(d.kind, d.gpu, g),
				kind: d.kind,
				dem:  d.val,
			})
		}
	}
	e.demOff[len(s.ops)] = int32(len(e.dems))
	return e
}

func (e *engine) demandsOf(o *op) []rtDemand {
	return e.dems[e.demOff[o.id]:e.demOff[o.id+1]]
}

func (e *engine) markDirty(idx int32) {
	if st := &e.res[idx]; !st.dirty {
		st.dirty = true
		e.dirty = append(e.dirty, idx)
	}
}

// enterWork registers an op that entered its work phase with its
// resources. Zero-demand ops (barriers, local transfers) just run at
// full speed.
func (e *engine) enterWork(o *op) {
	e.speeds[o.id] = 1
	for _, d := range e.demandsOf(o) {
		e.res[d.idx].insertUser(o, d.dem)
		e.markDirty(d.idx)
	}
}

// leaveWork unregisters a finished op from its resources.
func (e *engine) leaveWork(o *op) {
	for _, d := range e.demandsOf(o) {
		e.res[d.idx].removeUser(o)
		e.markDirty(d.idx)
	}
}

// refreshFactors re-derives the slowdown factors of one resource from
// its ordered user list. The math and, critically, the summation order
// match the reference implementation's full rescan.
func (e *engine) refreshFactors(idx int32) {
	st := &e.res[idx]
	st.levels = st.levels[:0]
	for _, u := range st.users {
		found := false
		for i := range st.levels {
			if st.levels[i].prio == u.o.priority {
				st.levels[i].load += u.dem
				found = true
				break
			}
		}
		if !found {
			st.levels = append(st.levels, resLevel{prio: u.o.priority, load: u.dem})
		}
	}
	st.factors = st.factors[:0]
	// cap is the resource's current (possibly perturbed) capacity; with
	// no active window it is exactly 1.0 and every expression below
	// reduces bit-for-bit to the constant-capacity math.
	cap := e.caps[idx]
	switch e.s.cfg.Policy {
	case PrioritySpace:
		// Highest priority first. Insertion sort: levels are few and
		// priorities unique, so this matches any comparison sort.
		for i := 1; i < len(st.levels); i++ {
			for j := i; j > 0 && st.levels[j].prio > st.levels[j-1].prio; j-- {
				st.levels[j], st.levels[j-1] = st.levels[j-1], st.levels[j]
			}
		}
		isSM := int(idx) < e.numGPUs // kind-major layout: SM block first
		remaining := cap
		for i, lv := range st.levels {
			f := 1.0
			if lv.load > remaining {
				if remaining <= 0 {
					f = 0
				} else {
					f = remaining / lv.load
				}
				remaining = 0
			} else {
				remaining -= lv.load
				// Lower priorities see the burst-inflated SM footprint
				// of this level, not its time average.
				if isSM && i < len(st.levels)-1 {
					burst := lv.load * (PriorityBurstFactor - 1)
					if burst > remaining {
						remaining = 0
					} else {
						remaining -= burst
					}
				}
			}
			st.factors = append(st.factors, prioFactor{prio: lv.prio, f: f})
		}
	default: // FairShare: one factor for everyone on the resource
		total := 0.0
		for _, lv := range st.levels {
			total += lv.load
		}
		f := 1.0
		if total > cap {
			f = math.Pow(cap/total, ContentionExponent)
		}
		for _, lv := range st.levels {
			st.factors = append(st.factors, prioFactor{prio: lv.prio, f: f})
		}
	}
}

// refreshSpeed recomputes one running op's speed from its resources'
// cached factors.
func (e *engine) refreshSpeed(o *op) {
	sp := 1.0
	for _, d := range e.demandsOf(o) {
		if f := e.res[d.idx].factorFor(o.priority); f < sp {
			sp = f
		}
	}
	if sp < minSpeed {
		sp = minSpeed
	}
	e.speeds[o.id] = sp
}

func (e *engine) run() (*Result, error) {
	s := e.s
	res := &Result{
		Ops:    make([]OpResult, len(s.ops)),
		Util:   make([][]UtilSegment, e.numGPUs),
		byName: make(map[string][]int),
	}

	now := 0.0
	done := 0

	start := func(o *op) {
		o.state = opLaunching
		o.start = now
		o.startSeq = e.nextSeq
		e.nextSeq++
		if o.overheadLeft <= timeEps {
			o.state = opRunning
			e.enterWork(o)
		}
		e.running = append(e.running, o)
	}
	for _, o := range s.ops {
		if o.missing == 0 {
			start(o)
		}
	}

	for done < len(s.ops) {
		if e.stop != nil && e.stop.Load() {
			return nil, errEngineCancelled
		}
		if len(e.running) == 0 {
			return nil, fmt.Errorf("gpusim: deadlock — %d ops pending with no runnable op (dependency cycle?)", len(s.ops)-done)
		}
		res.Events++

		// Refresh factors of resources whose running set changed, then
		// the speeds of (only) the ops those resources serve. Two
		// passes: an op spanning two dirty resources must see both
		// resources' new factors.
		for _, idx := range e.dirty {
			e.res[idx].dirty = false
			e.refreshFactors(idx)
		}
		for _, idx := range e.dirty {
			for _, u := range e.res[idx].users {
				e.refreshSpeed(u.o)
			}
		}
		e.dirty = e.dirty[:0]

		// Next event horizon.
		dt := math.Inf(1)
		for _, o := range e.running {
			switch o.state {
			case opLaunching:
				if o.overheadLeft < dt {
					dt = o.overheadLeft
				}
			case opRunning:
				if rem := o.workLeft / e.speeds[o.id]; rem < dt {
					dt = rem
				}
			}
		}
		if dt < 0 {
			dt = 0
		}
		if math.IsInf(dt, 1) {
			dt = 0 // only zero-work ops are running; complete them now
		}
		// Capacity boundaries are events too: never integrate across a
		// step change. (With no windows this branch never fires and the
		// float trajectory is untouched.)
		if e.capIdx < len(e.capEvents) {
			if lim := e.capEvents[e.capIdx].t - now; lim < dt {
				dt = lim
				if dt < 0 {
					dt = 0
				}
			}
		}

		// Record utilization for this segment.
		if dt > timeEps {
			e.recordUtil(res, now, now+dt)
		}

		// Advance and retire.
		now += dt
		for e.capIdx < len(e.capEvents) && e.capEvents[e.capIdx].t <= now+timeEps {
			for _, ch := range e.capEvents[e.capIdx].changes {
				e.caps[ch.idx] = ch.cap
				e.markDirty(ch.idx)
			}
			e.capIdx++
		}
		next := e.running[:0]
		finished := e.finished[:0]
		for _, o := range e.running {
			switch o.state {
			case opLaunching:
				o.overheadLeft -= dt
				if o.overheadLeft <= timeEps {
					o.overheadLeft = 0
					o.state = opRunning
					if o.workLeft <= timeEps {
						// Never entered the work phase's resource
						// accounting; retire directly.
						finished = append(finished, o)
						continue
					}
					e.enterWork(o)
				}
				next = append(next, o)
			case opRunning:
				o.workLeft -= dt * e.speeds[o.id]
				if o.workLeft <= timeEps {
					e.leaveWork(o)
					finished = append(finished, o)
					continue
				}
				next = append(next, o)
			}
		}
		e.running = next
		for _, o := range finished {
			o.state = opDone
			o.end = now
			done++
			res.Ops[o.id] = OpResult{ID: o.id, Name: o.name, Tag: o.tag, GPU: o.gpu, Start: o.start, End: o.end}
			res.byName[o.name] = append(res.byName[o.name], int(o.id))
			for _, c := range o.children {
				child := s.ops[c]
				child.missing--
				if child.missing == 0 && child.state == opPending {
					start(child)
				}
			}
		}
		e.finished = finished
	}
	res.Makespan = now
	return res, nil
}

// recordUtil appends one utilization segment per GPU covering [t0,t1),
// accumulating into reusable buffers; TagSM maps are only allocated when
// a new segment is actually appended.
func (e *engine) recordUtil(res *Result, t0, t1 float64) {
	for g := 0; g < e.numGPUs; g++ {
		e.accSM[g] = 0
		e.accBW[g] = 0
		e.tagAcc[g] = e.tagAcc[g][:0]
	}
	hostCPU := e.accumUtil(e.running, 0, e.accSM, e.accBW, e.tagAcc)
	flushHostSegment(res, t0, t1, hostCPU)
	for g := 0; g < e.numGPUs; g++ {
		flushGPUSegment(res, g, t0, t1, e.accSM[g], e.accBW[g], e.tagAcc[g])
	}
}

// accumUtil folds the granted utilization of the running-phase ops into
// the accumulators, which cover GPUs [lo, lo+len(accSM)). The caller
// guarantees every GPU-resident op in the list falls inside that window
// (SM and bandwidth demands are always on the op's own GPU). Shared by
// the sequential engine (whole-cluster window) and each shard (its own
// GPU range): the ops arrive in startSeq order either way, so the
// accumulation order — and therefore every float bit — matches.
func (e *engine) accumUtil(running []*op, lo int, accSM, accBW []float64, tagAcc [][]tagGrant) float64 {
	hostCPU := 0.0
	for _, o := range running {
		if o.state != opRunning {
			continue
		}
		for _, d := range e.demandsOf(o) {
			if d.kind == resCPU {
				hostCPU += d.dem * e.res[d.idx].factorFor(o.priority)
			}
		}
		if o.gpu < 0 {
			continue
		}
		for _, d := range e.demandsOf(o) {
			switch d.kind {
			case resSM:
				grant := d.dem * e.res[d.idx].factorFor(o.priority)
				g := int(d.idx) - lo // SM block leads the kind-major layout
				accSM[g] += grant
				ta := tagAcc[g]
				found := false
				for i := range ta {
					if ta[i].tag == o.tag {
						ta[i].sm += grant
						found = true
						break
					}
				}
				if !found {
					tagAcc[g] = append(ta, tagGrant{tag: o.tag, sm: grant})
				}
			case resBW:
				grant := d.dem * e.res[d.idx].factorFor(o.priority)
				accBW[int(d.idx)-e.numGPUs-lo] += grant
			}
		}
	}
	return hostCPU
}

// flushHostSegment appends (or merges) one event's host-pool segment.
func flushHostSegment(res *Result, t0, t1, hostCPU float64) {
	if hostCPU > 1 {
		hostCPU = 1
	}
	//lint:ignore floateq intentional bit-equality: adjacent segments merge only when identical
	if n := len(res.HostUtil); n > 0 && res.HostUtil[n-1].End == t0 && res.HostUtil[n-1].CPU == hostCPU {
		res.HostUtil[n-1].End = t1
	} else {
		res.HostUtil = append(res.HostUtil, HostSegment{Start: t0, End: t1, CPU: hostCPU})
	}
}

// flushGPUSegment appends one event's utilization segment for GPU g,
// merging with the previous segment when nothing changed to keep
// timelines compact. A TagSM map is allocated only on a real append.
func flushGPUSegment(res *Result, g int, t0, t1, accSM, accBW float64, tags []tagGrant) {
	sm := math.Min(accSM, 1)
	bw := math.Min(accBW, 1)
	if n := len(res.Util[g]); n > 0 {
		prev := &res.Util[g][n-1]
		//lint:ignore floateq intentional bit-equality: adjacent segments merge only when identical
		if prev.End == t0 && prev.SM == sm && prev.MemBW == bw && tagsMatch(prev.TagSM, tags) {
			prev.End = t1
			return
		}
	}
	var tagSM map[string]float64
	if len(tags) > 0 {
		tagSM = make(map[string]float64, len(tags))
		for _, tg := range tags {
			tagSM[tg.tag] = tg.sm
		}
	}
	res.Util[g] = append(res.Util[g], UtilSegment{Start: t0, End: t1, SM: sm, MemBW: bw, TagSM: tagSM})
}

// tagsMatch reports whether a stored TagSM map equals the event's tag
// accumulator without materializing a map for the comparison.
func tagsMatch(a map[string]float64, b []tagGrant) bool {
	if len(a) != len(b) {
		return false
	}
	for _, tg := range b {
		//lint:ignore floateq intentional bit-equality: merged segments must match exactly
		if av, ok := a[tg.tag]; !ok || av != tg.sm {
			return false
		}
	}
	return true
}

func equalTagSM(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	//lint:ignore maporder order-independent predicate: every entry is checked, any order
	for k, v := range a {
		//lint:ignore floateq intentional bit-equality: merged segments must match exactly
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// BusyFraction returns the fraction of [0,upTo] during which GPU g had at
// least one kernel resident (the NVML-style "GPU utilization" metric of
// Table 4). upTo <= 0 means the whole makespan. An out-of-range g
// yields 0.
func (r *Result) BusyFraction(g int, upTo float64) float64 {
	if g < 0 || g >= len(r.Util) {
		return 0
	}
	if upTo <= 0 {
		upTo = r.Makespan
	}
	if upTo <= 0 {
		return 0
	}
	busy := 0.0
	for _, seg := range r.Util[g] {
		if seg.SM <= 0 && seg.MemBW <= 0 {
			continue
		}
		s, e := seg.Start, seg.End
		if s >= upTo {
			break
		}
		if e > upTo {
			e = upTo
		}
		busy += e - s
	}
	return busy / upTo
}
