package gpusim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.4f, want %.4f (tol %.4f)", msg, got, want, tol)
	}
}

func TestSoloKernelLatency(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	k := Kernel{Name: "k", Work: 100, Demand: Demand{SM: 0.5, MemBW: 0.3}}
	id := s.AddKernel(0, k)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 100+DefaultLaunchOverhead, 1e-6, "solo latency")
	almost(t, res.Makespan, k.SoloLatency(), 1e-6, "makespan")
}

func TestLaunchOverheadOverride(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := s.AddKernel(0, Kernel{Name: "k", Work: 10, LaunchOverhead: 2, Demand: Demand{SM: 0.1}})
	id2 := s.AddKernel(0, Kernel{Name: "z", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.1}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 12, 1e-6, "custom overhead")
	almost(t, res.OpByID(id2).Latency(), 10, 1e-6, "suppressed overhead")
}

func TestCoRunNoContention(t *testing.T) {
	// Total demand under capacity on both resources: no stretch.
	s := NewSim(ClusterConfig{NumGPUs: 1})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 100, Demand: Demand{SM: 0.6, MemBW: 0.2}})
	b := s.AddKernel(0, Kernel{Name: "b", Work: 100, Demand: Demand{SM: 0.3, MemBW: 0.5}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(a).Latency(), 105, 1e-6, "a unstretched")
	almost(t, res.OpByID(b).Latency(), 105, 1e-6, "b unstretched")
}

func TestCoRunFairShareContention(t *testing.T) {
	// Two kernels each demanding 0.8 SM: load 1.6, both slowed by the
	// superlinear factor (1/1.6)^φ.
	s := NewSim(ClusterConfig{NumGPUs: 1, Policy: FairShare})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 160, LaunchOverhead: -1, Demand: Demand{SM: 0.8}})
	b := s.AddKernel(0, Kernel{Name: "b", Work: 160, LaunchOverhead: -1, Demand: Demand{SM: 0.8}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 160 * math.Pow(1.6, ContentionExponent)
	almost(t, res.OpByID(a).Latency(), want, 1e-6, "a stretched")
	almost(t, res.OpByID(b).Latency(), want, 1e-6, "b stretched")
}

func TestCoRunAsymmetricRelease(t *testing.T) {
	// b is short; once it finishes, a speeds back up.
	s := NewSim(ClusterConfig{NumGPUs: 1, Policy: FairShare})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 100, LaunchOverhead: -1, Demand: Demand{SM: 1.0}})
	b := s.AddKernel(0, Kernel{Name: "b", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 1.0}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Both run at (1/2)^φ until b finishes; a then has 90 work left at
	// full speed.
	f := math.Pow(0.5, ContentionExponent)
	bEnd := 10 / f
	almost(t, res.OpByID(b).End, bEnd, 1e-6, "b end")
	almost(t, res.OpByID(a).End, bEnd+90, 1e-6, "a end")
}

func TestPrioritySpaceSharing(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, Policy: PrioritySpace})
	hi := s.AddKernel(0, Kernel{Name: "train", Work: 100, LaunchOverhead: -1, Demand: Demand{SM: 0.7}}, WithPriority(1))
	lo := s.AddKernel(0, Kernel{Name: "pre", Work: 60, LaunchOverhead: -1, Demand: Demand{SM: 0.6}}, WithPriority(0))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// High priority gets its full 0.7 and is unstretched.
	almost(t, res.OpByID(hi).Latency(), 100, 1e-6, "train unaffected")
	// Low priority sees the burst-inflated footprint of the training
	// kernel (0.7×PriorityBurstFactor ≥ 1): it crawls at the progress
	// floor until train finishes, then runs its ~60 work at full speed.
	got := res.OpByID(lo).End
	if got < 155 || got > 165 {
		t.Fatalf("preproc squeezed: end = %f, want ~160", got)
	}
}

func TestPrioritySpaceStarvationFloor(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, Policy: PrioritySpace})
	s.AddKernel(0, Kernel{Name: "train", Work: 50, LaunchOverhead: -1, Demand: Demand{SM: 1.0}}, WithPriority(1))
	lo := s.AddKernel(0, Kernel{Name: "pre", Work: 1, LaunchOverhead: -1, Demand: Demand{SM: 0.5}}, WithPriority(0))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Starved op still progresses at the floor speed and terminates.
	if res.OpByID(lo).End <= 0 || math.IsInf(res.OpByID(lo).End, 1) {
		t.Fatalf("starved op never finished: %+v", res.OpByID(lo))
	}
}

func TestStreamsSerialize(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.1}}, WithStream("s0"))
	b := s.AddKernel(0, Kernel{Name: "b", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.1}}, WithStream("s0"))
	c := s.AddKernel(0, Kernel{Name: "c", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.1}}, WithStream("s1"))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OpByID(b).Start < res.OpByID(a).End-1e-9 {
		t.Fatalf("stream did not serialize: b.start=%f a.end=%f", res.OpByID(b).Start, res.OpByID(a).End)
	}
	almost(t, res.OpByID(c).Start, 0, 1e-9, "other stream starts immediately")
}

func TestExplicitDeps(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 30, LaunchOverhead: -1, Demand: Demand{SM: 0.2}})
	b := s.AddKernel(1, Kernel{Name: "b", Work: 5, LaunchOverhead: -1, Demand: Demand{SM: 0.2}}, WithDeps(a))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(b).Start, 30, 1e-6, "dep start")
	almost(t, res.Makespan, 35, 1e-6, "makespan")
}

func TestBarrierJoinsFanIn(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.2}})
	b := s.AddKernel(1, Kernel{Name: "b", Work: 25, LaunchOverhead: -1, Demand: Demand{SM: 0.2}})
	bar := s.AddBarrier("sync", WithDeps(a, b))
	c := s.AddKernel(0, Kernel{Name: "c", Work: 1, LaunchOverhead: -1, Demand: Demand{SM: 0.2}}, WithDeps(bar))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(c).Start, 25, 1e-6, "barrier waits for slowest")
}

func TestCommLatency(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2, LinkGBs: 100})
	// 1 MB over 100 GB/s = 1e6 / (100*1e3) µs = 10 µs.
	id := s.AddComm("xfer", 0, 1, 1e6)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 10, 1e-6, "comm latency")
}

func TestCommSameGPUChargesDRAM(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2, LinkGBs: 100, DramGBs: 1000})
	// 1 GB at 1000 GB/s = 1e9 / (1000*1e3) µs = 1000 µs: a local
	// transfer is a D2D copy through DRAM, not free.
	id := s.AddComm("local", 1, 1, 1e9)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 1000, 1e-6, "local copy at DRAM bandwidth")
}

func TestCommSameGPUFloorAndContention(t *testing.T) {
	// Tiny local transfers keep the 0.5 µs floor; large ones contend
	// with kernels for MemBW.
	s := NewSim(ClusterConfig{NumGPUs: 1, DramGBs: 1000})
	tiny := s.AddComm("tiny", 0, 0, 1)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(tiny).Latency(), 0.5, 1e-9, "local copy latency floor")

	s2 := NewSim(ClusterConfig{NumGPUs: 1, DramGBs: 1000})
	c := s2.AddComm("big", 0, 0, 1e9) // 1000 µs solo
	k := s2.AddKernel(0, Kernel{Name: "k", Work: 1000, LaunchOverhead: -1, Demand: Demand{MemBW: 1}})
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Copy (BW demand 1) + kernel (BW demand 1): both stretched by the
	// fair-share oversubscription factor 2^φ.
	want := 1000 * math.Pow(2, ContentionExponent)
	almost(t, res2.OpByID(c).Latency(), want, 1e-6, "local copy under BW contention")
	almost(t, res2.OpByID(k).Latency(), want, 1e-6, "kernel stretched by local copy")
}

func TestResultRangeGuards(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2})
	s.AddKernel(0, Kernel{Name: "k", Work: 10, Demand: Demand{SM: 0.5}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{-1, 2, 100} {
		if sm, bw := res.AvgUtil(g, 0); sm != 0 || bw != 0 {
			t.Fatalf("AvgUtil(%d) = %v,%v; want zeros", g, sm, bw)
		}
		if got := res.UtilSeries(g, 1); got != nil {
			t.Fatalf("UtilSeries(%d) = %v; want nil", g, got)
		}
		if got := res.BusyFraction(g, 0); got != 0 {
			t.Fatalf("BusyFraction(%d) = %v; want 0", g, got)
		}
	}
}

func TestCommLinkContention(t *testing.T) {
	// Two transfers out of GPU 0 share its egress link.
	s := NewSim(ClusterConfig{NumGPUs: 3, LinkGBs: 100})
	a := s.AddComm("a", 0, 1, 1e6)
	b := s.AddComm("b", 0, 2, 1e6)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Pow(2, ContentionExponent)
	almost(t, res.OpByID(a).Latency(), want, 1e-6, "shared egress a")
	almost(t, res.OpByID(b).Latency(), want, 1e-6, "shared egress b")
}

func TestHostCopyAndCPU(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, CopyGBs: 10, HostCores: 4})
	h := s.AddHostCopy("h2d", 0, 1e5) // 1e5 / (10*1e3) = 10 µs
	c := s.AddCPU("prep", 40, 2)      // 2 of 4 cores
	c2 := s.AddCPU("prep2", 40, 2)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(h).Latency(), 10, 1e-6, "host copy")
	// The two CPU ops together demand the whole pool: no stretch.
	almost(t, res.OpByID(c).Latency(), 40, 1e-6, "cpu op")
	almost(t, res.OpByID(c2).Latency(), 40, 1e-6, "cpu op 2")
}

func TestCPUPoolContention(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, HostCores: 4})
	a := s.AddCPU("a", 40, 4)
	b := s.AddCPU("b", 40, 4)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 40 * math.Pow(2, ContentionExponent)
	almost(t, res.OpByID(a).Latency(), want, 1e-6, "cpu contention")
	almost(t, res.OpByID(b).Latency(), want, 1e-6, "cpu contention")
}

func TestDeadlockDetected(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 1, Demand: Demand{SM: 0.1}})
	b := s.AddKernel(0, Kernel{Name: "b", Work: 1, Demand: Demand{SM: 0.1}}, WithDeps(a))
	// Forge a cycle a -> b -> a.
	s.ops[a].deps = append(s.ops[a].deps, b)
	if _, err := s.Run(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	s.AddKernel(0, Kernel{Name: "a", Work: 1, Demand: Demand{SM: 0.1}})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestBadDepRejected(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	s.AddKernel(0, Kernel{Name: "a", Work: 1, Demand: Demand{SM: 0.1}}, WithDeps(OpID(99)))
	if _, err := s.Run(); err == nil {
		t.Fatal("unknown dep accepted")
	}
}

func TestSelfDepRejected(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	o := s.AddKernel(0, Kernel{Name: "a", Work: 1, Demand: Demand{SM: 0.1}})
	s.ops[o].deps = append(s.ops[o].deps, o)
	if _, err := s.Run(); err == nil {
		t.Fatal("self dep accepted")
	}
}

func TestGPUOutOfRangeRejected(t *testing.T) {
	cases := []struct {
		name string
		add  func(s *Sim) OpID
	}{
		{"kernel", func(s *Sim) OpID { return s.AddKernel(3, Kernel{Name: "a", Work: 1}) }},
		{"kernel_negative", func(s *Sim) OpID { return s.AddKernel(-1, Kernel{Name: "a", Work: 1}) }},
		{"comm_src", func(s *Sim) OpID { return s.AddComm("c", 3, 0, 1e6) }},
		{"comm_dst", func(s *Sim) OpID { return s.AddComm("c", 0, -2, 1e6) }},
		{"linkbusy", func(s *Sim) OpID { return s.AddLinkBusy("l", 5, 1e6) }},
		{"hostcopy", func(s *Sim) OpID { return s.AddHostCopy("h", -1, 1e6) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSim(ClusterConfig{NumGPUs: 1})
			if id := tc.add(s); id != InvalidOp {
				t.Fatalf("out-of-range gpu accepted: op %d", id)
			}
			// A valid op added afterwards does not clear the recorded error.
			s.AddKernel(0, Kernel{Name: "ok", Work: 1, Demand: Demand{SM: 0.1}})
			if _, err := s.Run(); err == nil {
				t.Fatal("Run succeeded despite invalid add")
			} else if !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	s.AddKernel(0, Kernel{Name: "a", Work: 100, LaunchOverhead: -1, Demand: Demand{SM: 0.6, MemBW: 0.4}, Tag: "train"})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sm, bw := res.AvgUtil(0, 0)
	almost(t, sm, 0.6, 1e-6, "avg sm")
	almost(t, bw, 0.4, 1e-6, "avg bw")
	almost(t, res.BusyFraction(0, 0), 1.0, 1e-6, "busy fraction")
	if len(res.Util[0]) == 0 || res.Util[0][0].TagSM["train"] != 0.6 {
		t.Fatalf("tag attribution wrong: %+v", res.Util[0])
	}
}

func TestUtilSeriesSampling(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 50, LaunchOverhead: -1, Demand: Demand{SM: 0.9}})
	s.AddKernel(0, Kernel{Name: "b", Work: 50, LaunchOverhead: -1, Demand: Demand{SM: 0.1}}, WithDeps(a))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := res.UtilSeries(0, 10)
	if len(series) < 10 {
		t.Fatalf("series too short: %d", len(series))
	}
	almost(t, series[2].SM, 0.9, 1e-6, "early sample")
	almost(t, series[7].SM, 0.1, 1e-6, "late sample")
	if got := res.UtilSeries(0, 0); got != nil {
		t.Fatal("dt=0 should return nil")
	}
}

func TestAvgUtilPrefixWindow(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	a := s.AddKernel(0, Kernel{Name: "a", Work: 50, LaunchOverhead: -1, Demand: Demand{SM: 1.0}})
	s.AddKernel(0, Kernel{Name: "idlegap", Work: 50, LaunchOverhead: -1, Demand: Demand{}}, WithDeps(a))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sm, _ := res.AvgUtil(0, 50)
	almost(t, sm, 1.0, 1e-6, "prefix window util")
	sm, _ = res.AvgUtil(0, 100)
	almost(t, sm, 0.5, 1e-6, "full window util")
}

func TestOpsByName(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	s.AddKernel(0, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.1}})
	s.AddKernel(0, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.1}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.OpsByName("k")); got != 2 {
		t.Fatalf("OpsByName = %d results, want 2", got)
	}
	if res.OpsByName("zzz") != nil {
		t.Fatal("unknown name returned results")
	}
}

func TestDemandClamp(t *testing.T) {
	d := Demand{SM: 1.7, MemBW: -0.4}.Clamp()
	if d.SM != 1 || d.MemBW != 0 {
		t.Fatalf("Clamp = %+v", d)
	}
}

func TestPolicyString(t *testing.T) {
	if FairShare.String() != "fair-share" || PrioritySpace.String() != "priority-space" {
		t.Fatal("policy names wrong")
	}
	if SharePolicy(9).String() == "" {
		t.Fatal("unknown policy empty name")
	}
}

func TestLinkBusy(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2, LinkGBs: 100})
	id := s.AddLinkBusy("a2a", 0, 1e6)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 10, 1e-6, "link busy latency")
}

// Property: the makespan is at least the longest dependency chain's solo
// latency, and contention can only increase op latency, never decrease it.
func TestContentionMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		mk := func() (*Sim, []OpID) {
			s := NewSim(ClusterConfig{NumGPUs: 1, Policy: FairShare})
			ids := make([]OpID, n)
			r2 := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				k := Kernel{
					Name:           "k",
					Work:           1 + 50*r2.Float64(),
					LaunchOverhead: -1,
					Demand:         Demand{SM: r2.Float64(), MemBW: r2.Float64()},
				}
				ids[i] = s.AddKernel(0, k)
			}
			return s, ids
		}
		s1, ids := mk()
		res1, err := s1.Run()
		if err != nil {
			return false
		}
		// Same kernels plus one extra contender.
		s2, ids2 := mk()
		s2.AddKernel(0, Kernel{Name: "extra", Work: 100, LaunchOverhead: -1, Demand: Demand{SM: 0.9, MemBW: 0.9}})
		res2, err := s2.Run()
		if err != nil {
			return false
		}
		for i := range ids {
			if res2.OpByID(ids2[i]).Latency() < res1.OpByID(ids[i]).Latency()-1e-6 {
				return false
			}
		}
		return res1.Makespan <= res2.Makespan+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization never exceeds 1 and op latencies are never below
// solo latency.
func TestUtilBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim(ClusterConfig{NumGPUs: 2, Policy: SharePolicy(rng.Intn(2))})
		n := 2 + rng.Intn(8)
		type added struct {
			id   OpID
			solo float64
		}
		var ids []added
		for i := 0; i < n; i++ {
			k := Kernel{
				Name:   "k",
				Work:   rng.Float64() * 30,
				Demand: Demand{SM: rng.Float64(), MemBW: rng.Float64()},
			}
			ids = append(ids, added{s.AddKernel(rng.Intn(2), k), k.SoloLatency()})
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		for g := 0; g < 2; g++ {
			for _, seg := range res.Util[g] {
				if seg.SM > 1+1e-9 || seg.MemBW > 1+1e-9 || seg.End < seg.Start {
					return false
				}
			}
		}
		for _, a := range ids {
			if res.OpByID(a.id).Latency() < a.solo-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, HostCores: 10})
	s.AddKernel(0, Kernel{Name: "k", Work: 1e6, LaunchOverhead: -1, Demand: Demand{SM: 0.5, MemBW: 0.5}})
	s.AddCPU("c", 1e6, 5)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	pm := PowerModel{GPUIdleW: 100, GPUSMW: 200, GPUMemW: 100, HostIdleW: 50, HostCoreW: 10}
	e := res.Energy(pm, 1, 10)
	// 1 second makespan: GPU = 100 idle + 200*0.5 + 100*0.5 = 250 J;
	// host = 50 idle + 10 W/core * 10 cores * 0.5 util = 100 J.
	almost(t, e.MakespanUs, 1e6, 1e-3, "makespan")
	almost(t, e.GPUJoules, 250, 0.5, "gpu joules")
	almost(t, e.HostJoules, 100, 0.5, "host joules")
	almost(t, e.Total(), 350, 1, "total")
	almost(t, e.AvgGPUWatts(), 250, 0.5, "gpu watts")
	almost(t, e.AvgHostWatts(), 100, 0.5, "host watts")
	if len(res.HostUtil) == 0 {
		t.Fatal("no host utilization recorded")
	}
}

func TestEnergyEmptyResult(t *testing.T) {
	var e EnergyReport
	if e.AvgGPUWatts() != 0 || e.AvgHostWatts() != 0 {
		t.Fatal("zero-makespan watts should be 0")
	}
}

// TestQuerySurfaceOutOfRange pins the defined-zero behavior of the
// Result query surface: out-of-range lookups return zero values, never
// panic (the same convention AvgUtil/UtilSeries/BusyFraction follow).
func TestQuerySurfaceOutOfRange(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := s.AddKernel(0, Kernel{Name: "k", Work: 10, Demand: Demand{SM: 0.5}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.OpByID(id); got.Name != "k" {
		t.Fatalf("in-range OpByID: %+v", got)
	}
	for _, bad := range []OpID{-1, OpID(len(res.Ops)), 99, InvalidOp} {
		if got := res.OpByID(bad); got != (OpResult{}) {
			t.Errorf("OpByID(%d) = %+v, want zero OpResult", bad, got)
		}
	}
	// Energy with an inflated GPU count clamps to the recorded
	// timelines instead of panicking, and matches the exact count.
	pm := DefaultPowerModel()
	want := res.Energy(pm, 1, 8)
	got := res.Energy(pm, 64, 8)
	if math.Float64bits(got.GPUJoules) != math.Float64bits(want.GPUJoules) ||
		math.Float64bits(got.HostJoules) != math.Float64bits(want.HostJoules) {
		t.Errorf("clamped Energy %+v != exact-count Energy %+v", got, want)
	}
}
