// Package gpusim is a discrete-event simulator of a multi-GPU training
// node. It stands in for the 8×A100 DGX machine the RAP paper evaluates
// on (see DESIGN.md, substitution table).
//
// The model is deliberately simple but captures exactly the mechanics the
// RAP scheduler exploits:
//
//   - Every GPU exposes two shared resources, SM throughput and DRAM
//     bandwidth, each with capacity 1.0. A kernel declares a demand in
//     [0,1] for each; running alone it executes its Work (µs of solo
//     time) at speed 1 after a fixed launch overhead.
//   - Kernels co-running on a GPU contend: when the aggregate demand on
//     a resource exceeds its capacity, every kernel using that resource
//     is slowed by the oversubscription factor (fair sharing, as under
//     MPS) or by leftover capacity only (priority/space sharing, as with
//     CUDA stream priorities). A kernel's speed is the minimum across
//     the resources it touches — so a bandwidth-bound embedding stage and
//     a compute-light preprocessing kernel overlap for free, while two
//     compute-heavy kernels stretch each other, reproducing Figure 1(c).
//   - Inter-GPU communication occupies per-GPU link-in/link-out
//     resources; host-to-device copies occupy a per-GPU copy engine; CPU
//     preprocessing occupies a host CPU pool. These make data-preparation
//     interleaving (§6.3) and the CPU baseline observable in timelines.
//
// Ops form a DAG (explicit dependencies plus implicit per-stream
// serialization) and the engine advances time event-by-event, recording
// per-op start/end and per-GPU utilization segments.
package gpusim

import (
	"fmt"
	"math"

	"rap/internal/topo"
)

// Time values are microseconds throughout the simulator.

// DefaultLaunchOverhead is the fixed kernel-launch latency in µs applied
// when a Kernel does not set its own. It is the per-kernel cost that
// horizontal fusion amortizes (§2.3 of the paper: "sequentially invoking
// small input preprocessing kernels ... significant kernel launching
// overhead").
const DefaultLaunchOverhead = 5.0 //rap:unit us

// Demand is a kernel's maximum usable fraction of each GPU resource.
type Demand struct {
	SM    float64 // fraction of SM throughput, [0,1]
	MemBW float64 // fraction of DRAM bandwidth, [0,1]
}

// Clamp returns the demand with both fields clipped to [0,1].
func (d Demand) Clamp() Demand {
	c := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return Demand{SM: c(d.SM), MemBW: c(d.MemBW)}
}

// Kernel describes one GPU kernel for the simulator.
type Kernel struct {
	Name string
	// Work is the kernel's solo execution time in µs, excluding launch
	// overhead. Under contention the effective time is Work/speed.
	Work   float64 //rap:unit us
	Demand Demand
	// Warps is informational (it drives demand models upstream and the
	// Figure 5(c) study); the engine itself only uses Demand.
	Warps int
	// LaunchOverhead, if zero, defaults to DefaultLaunchOverhead. The
	// overhead phase is host-side and does not contend for GPU resources.
	LaunchOverhead float64 //rap:unit us
	// Tag labels the kernel for utilization attribution ("train",
	// "preproc", ...).
	Tag string
}

// overhead resolves the kernel's effective launch overhead.
//
//rap:unit return us
func (k Kernel) overhead() float64 {
	if k.LaunchOverhead > 0 {
		return k.LaunchOverhead
	}
	if k.LaunchOverhead < 0 {
		return 0
	}
	return DefaultLaunchOverhead
}

// SoloLatency returns the kernel's uncontended latency.
//
//rap:unit return us
func (k Kernel) SoloLatency() float64 { return k.overhead() + k.Work }

// SharePolicy selects how co-running kernels split an oversubscribed
// resource.
type SharePolicy int

const (
	// FairShare slows every user of an oversubscribed resource by the
	// same factor (proportional sharing, the MPS-like behaviour).
	FairShare SharePolicy = iota
	// PrioritySpace grants higher-priority ops their full demand first;
	// lower priorities share the leftover (CUDA stream priorities).
	PrioritySpace
)

// String returns the policy name.
func (p SharePolicy) String() string {
	switch p {
	case FairShare:
		return "fair-share"
	case PrioritySpace:
		return "priority-space"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ClusterConfig sizes the simulated node.
type ClusterConfig struct {
	NumGPUs int
	// LinkGBs is the per-GPU NVLink bandwidth in GB/s (default 300,
	// NVSwitch-class).
	LinkGBs float64 //rap:unit GB/s
	// CopyGBs is the per-GPU host-to-device copy bandwidth in GB/s
	// (default 25, PCIe 4-class).
	CopyGBs float64 //rap:unit GB/s
	// DramGBs is the per-GPU DRAM bandwidth in GB/s used to charge
	// device-local copies (default 1555, A100 HBM2-class). Kernel MemBW
	// demands stay fractional; this converts same-GPU transfer bytes
	// into occupancy time on that fraction scale.
	DramGBs float64 //rap:unit GB/s
	// HostCores is the size of the host CPU pool available to CPU ops,
	// expressed as schedulable workers (default 64).
	HostCores int
	Policy    SharePolicy
}

// WithDefaults returns the config with zero fields replaced by their
// defaults (the same normalization NewSim applies).
func (c ClusterConfig) WithDefaults() ClusterConfig {
	if c.NumGPUs <= 0 {
		c.NumGPUs = 1
	}
	if c.LinkGBs <= 0 {
		c.LinkGBs = 300
	}
	if c.CopyGBs <= 0 {
		c.CopyGBs = 25
	}
	if c.DramGBs <= 0 {
		c.DramGBs = 1555
	}
	if c.HostCores <= 0 {
		c.HostCores = 64
	}
	return c
}

// resKind enumerates the resource classes of the cluster.
type resKind int

const (
	resSM resKind = iota
	resBW
	resLinkOut
	resLinkIn
	resCopy
	resCPU // host-wide; gpu index ignored
)

// numResKinds counts the kind-major resource classes; resCPU must stay
// last (the engine lays resources out as kind-major dense arrays, with
// the single host-wide CPU slot at the end).
const numResKinds = int(resCPU) + 1

// resFabric is the per-node inter-node fabric link. It sits outside the
// kind-major layout: fabric resources are one per *node*, not per GPU,
// and occupy dense indices after the host-CPU slot — zero of them exist
// unless SetTopology installed a multi-node topology, which is what
// keeps flat/nil-topology simulations bit-identical to the layout that
// predates hierarchical topologies. For fabric demands the demandSpec
// gpu field holds the node index.
const resFabric = resKind(numResKinds)

// demandSpec is one (resource, demand) requirement of an op. Demands are
// stored as a short slice (at most two entries) rather than a map: the
// engine iterates them on every event, and map traversal plus hashing
// dominated the old hot path.
type demandSpec struct {
	kind resKind
	gpu  int // 0 for host-wide resources
	val  float64
}

// OpID identifies an op added to a Sim.
type OpID int

// opState is the lifecycle of an op inside the engine.
type opState int

const (
	opPending opState = iota
	opLaunching
	opRunning
	opDone
)

type op struct {
	id       OpID
	name     string
	tag      string
	gpu      int // -1 for host-only ops
	priority int
	// isKernel marks ops added via AddKernel; straggler injection only
	// targets these.
	isKernel bool

	overheadLeft float64
	workLeft     float64
	demands      []demandSpec

	// startSeq is the op's position in engine start order; the engine
	// keeps per-resource user lists sorted by it so that incremental
	// factor recomputation sums loads in exactly the order the original
	// full-rescan implementation did (bit-identical results).
	startSeq int

	deps     []OpID
	children []OpID
	missing  int // unfinished deps

	state opState
	start float64
	end   float64
}

// OpResult reports one finished op.
type OpResult struct {
	ID    OpID
	Name  string
	Tag   string
	GPU   int
	Start float64 //rap:unit us
	End   float64 //rap:unit us
}

// Latency is the op's wall time.
//
//rap:unit return us
func (r OpResult) Latency() float64 { return r.End - r.Start }

// UtilSegment is a span of time with constant per-GPU utilization.
type UtilSegment struct {
	Start, End float64 //rap:unit us
	SM, MemBW  float64 // granted utilization in [0,1]
	// TagSM attributes SM utilization by kernel tag.
	TagSM map[string]float64
}

// Result is the outcome of Sim.Run.
type Result struct {
	Ops      []OpResult
	Makespan float64 //rap:unit us
	// Util[g] is the utilization timeline of GPU g.
	Util [][]UtilSegment
	// HostUtil is the host CPU pool's utilization timeline.
	HostUtil []HostSegment
	// Events counts the simulated event-loop iterations. Every engine
	// configuration replays the same event trajectory, so the count is
	// identical across sequential and sharded runs (the equivalence
	// suite asserts this) and normalizes benchmark times to ns/event.
	Events int

	byName map[string][]int
}

// OpByID returns the result of op id. An out-of-range id yields the
// zero OpResult (same defined-zero behavior as AvgUtil/UtilSeries/
// BusyFraction on out-of-range GPUs).
func (r *Result) OpByID(id OpID) OpResult {
	if int(id) < 0 || int(id) >= len(r.Ops) {
		return OpResult{}
	}
	return r.Ops[int(id)]
}

// OpsByName returns all results whose op name matches.
func (r *Result) OpsByName(name string) []OpResult {
	var out []OpResult
	for _, i := range r.byName[name] {
		out = append(out, r.Ops[i])
	}
	return out
}

// AvgUtil returns the time-weighted mean SM and bandwidth utilization of
// GPU g over [0, upTo]; upTo <= 0 means the whole makespan. An
// out-of-range g yields zeros.
func (r *Result) AvgUtil(g int, upTo float64) (sm, bw float64) {
	if g < 0 || g >= len(r.Util) {
		return 0, 0
	}
	if upTo <= 0 {
		upTo = r.Makespan
	}
	if upTo <= 0 {
		return 0, 0
	}
	var smArea, bwArea float64
	for _, seg := range r.Util[g] {
		s, e := seg.Start, seg.End
		if s >= upTo {
			break
		}
		if e > upTo {
			e = upTo
		}
		smArea += seg.SM * (e - s)
		bwArea += seg.MemBW * (e - s)
	}
	return smArea / upTo, bwArea / upTo
}

// Sample is one point of a resampled utilization series.
type Sample struct {
	T         float64
	SM, MemBW float64
}

// UtilSeries resamples GPU g's utilization at the given period, for
// plotting Figure 1(a)-style traces. An out-of-range g yields nil.
func (r *Result) UtilSeries(g int, dt float64) []Sample {
	if g < 0 || g >= len(r.Util) || dt <= 0 || r.Makespan <= 0 {
		return nil
	}
	n := int(math.Ceil(r.Makespan/dt)) + 1
	out := make([]Sample, 0, n)
	segs := r.Util[g]
	si := 0
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		for si < len(segs)-1 && segs[si].End <= t {
			si++
		}
		s := Sample{T: t}
		if si < len(segs) && t >= segs[si].Start && t < segs[si].End {
			s.SM = segs[si].SM
			s.MemBW = segs[si].MemBW
		}
		out = append(out, s)
	}
	return out
}

// EngineOptions selects how Run executes the event loop. The options
// influence wall-clock only: every configuration produces bit-identical
// Results (enforced by the cross-shard-count equivalence suite and the
// golden digests).
type EngineOptions struct {
	// Shards requests the sharded parallel engine with that many GPU
	// shards. 0 or 1 selects the sequential engine; values above the
	// GPU count are clamped. Sharding is skipped (sequential fallback)
	// for DAGs too small to amortize the per-event synchronization.
	Shards int
	// NoRace disables racing the sequential engine alongside the
	// sharded one. By default, when the sharded engine is selected and
	// a spare CPU exists, Run races both and returns the first finisher
	// — results are bit-identical either way, so the race is purely a
	// wall-clock hedge against barrier overhead on unfavourable DAGs
	// (the milp.Solve pattern). Benchmarks set NoRace for clean
	// per-configuration timings.
	NoRace bool
}

// Sim accumulates an op DAG and executes it.
type Sim struct {
	cfg     ClusterConfig
	ops     []*op
	streams map[string]OpID // last op per stream, for implicit chaining
	ran     bool
	engine  EngineOptions
	// addErr records the first invalid Add* call (e.g. an out-of-range
	// GPU); Run reports it instead of executing. Deferred error
	// reporting keeps the builder surface panic-free, matching the
	// zero-value/error convention of the Result query surface.
	addErr error
	// capWindows holds the time-varying capacity scalings (see
	// capacity.go); empty means every resource has capacity 1.0 forever.
	capWindows []capWindow

	// Hierarchical-topology state, resolved by SetTopology. With no
	// topology (or a flat one) numFabric is 0, no fabric resources
	// exist, and every Add* path is byte-for-byte the pre-topology one.
	topo      *topo.Topology
	numFabric int   // fabric links = nodes; 0 disables fabric charging
	nodeOf    []int // GPU → node (shared read-only with the topology)
	nodeSize  []int // node → GPU count
	// fabricShare is the fabric demand of one full-rate NVLink flow:
	// LinkGBs/FabricGBs. fabricCap is each fabric link's capacity,
	// 1/Oversub, seeded through the capacity step-function machinery.
	fabricShare float64
	fabricCap   float64
}

// NewSim creates a simulator for the given cluster.
//
//rap:deterministic
func NewSim(cfg ClusterConfig) *Sim {
	return &Sim{cfg: cfg.WithDefaults(), streams: make(map[string]OpID)}
}

// Config returns the (defaulted) cluster configuration.
func (s *Sim) Config() ClusterConfig { return s.cfg }

// SetTopology installs a hierarchical topology: GPUs grouped into
// NVSwitch nodes behind an oversubscribed inter-node fabric. Each node
// gets one fabric-link resource; cross-node transfers (AddComm between
// GPUs on different nodes) and the cross-node share of collectives
// (AddLinkBusy) charge it in addition to the endpoints' NVLink in/out.
// One full-rate NVLink flow demands LinkGBs/FabricGBs of a link whose
// capacity is 1/Oversub — oversubscription rides the same capacity
// machinery as perturbation windows (capacity.go), so AddCapacityWindow
// on ResFabric composes multiplicatively with it.
//
// Because fabric demands are resolved at add time, SetTopology must
// precede every Add* call whenever fabric links are involved — that is,
// whenever the old or new topology has more than one node. A nil or
// single-node (flat) topology creates no fabric resources and leaves
// the simulation bit-identical to one that predates topologies — pinned
// by the golden back-compat suite — so installing one is legal at any
// point before Run.
func (s *Sim) SetTopology(t *topo.Topology) error {
	if s.ran {
		return fmt.Errorf("gpusim: SetTopology after Run")
	}
	if len(s.ops) > 0 && (s.numFabric > 0 || (t != nil && t.NumNodes() > 1)) {
		return fmt.Errorf("gpusim: SetTopology after ops were added (a multi-node topology must be set before the first Add call)")
	}
	s.topo, s.numFabric, s.nodeOf, s.nodeSize = nil, 0, nil, nil
	s.fabricShare, s.fabricCap = 0, 0
	if t == nil {
		return nil
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.NumGPUs() != s.cfg.NumGPUs {
		return fmt.Errorf("gpusim: topology has %d GPUs, cluster %d", t.NumGPUs(), s.cfg.NumGPUs)
	}
	s.topo = t
	if t.NumNodes() <= 1 {
		return nil // flat: no fabric links, identical to no topology
	}
	s.numFabric = t.NumNodes()
	s.nodeOf = make([]int, s.cfg.NumGPUs)
	s.nodeSize = make([]int, s.numFabric)
	for g := range s.nodeOf {
		n := t.NodeOf(g)
		s.nodeOf[g] = n
		s.nodeSize[n]++
	}
	fabricGBs := t.FabricGBs
	if fabricGBs <= 0 {
		fabricGBs = s.cfg.LinkGBs
	}
	s.fabricShare = s.cfg.LinkGBs / fabricGBs
	oversub := t.Oversub
	if oversub < 1 {
		oversub = 1
	}
	s.fabricCap = 1 / oversub
	return nil
}

// Topology returns the installed topology (nil when none was set).
func (s *Sim) Topology() *topo.Topology { return s.topo }

// SetEngineOptions configures how Run executes the DAG. It must be
// called before Run; the options never change observable results.
func (s *Sim) SetEngineOptions(o EngineOptions) { s.engine = o }

// EngineOptions returns the configured engine options.
func (s *Sim) EngineOptions() EngineOptions { return s.engine }

// OpOption customizes an op at add time.
type OpOption func(*op, *Sim)

// WithDeps makes the op wait for the given ops.
func WithDeps(ids ...OpID) OpOption {
	return func(o *op, _ *Sim) { o.deps = append(o.deps, ids...) }
}

// WithStream serializes the op after the previous op added to the same
// stream key. Streams model CUDA streams: per-stream FIFO, cross-stream
// concurrency.
func WithStream(key string) OpOption {
	return func(o *op, s *Sim) {
		if last, ok := s.streams[key]; ok {
			o.deps = append(o.deps, last)
		}
		s.streams[key] = o.id
	}
}

// WithPriority sets the op's priority for PrioritySpace sharing; higher
// wins. Default 0.
func WithPriority(p int) OpOption {
	return func(o *op, _ *Sim) { o.priority = p }
}

// WithTag overrides the op's utilization-attribution tag.
func WithTag(tag string) OpOption {
	return func(o *op, _ *Sim) { o.tag = tag }
}

func (s *Sim) add(o *op, opts ...OpOption) OpID {
	o.id = OpID(len(s.ops))
	s.ops = append(s.ops, o)
	for _, f := range opts {
		f(o, s)
	}
	return o.id
}

// InvalidOp is the OpID returned by Add* calls rejected at add time
// (e.g. an out-of-range GPU). It is never a valid dependency: a Run on
// a Sim that recorded an invalid add reports the add error.
const InvalidOp = OpID(-1)

// checkGPU validates a GPU index at add time, with the same message
// for every op kind. Validating at add time turns what used to be an
// unrelated slice-bounds panic deep inside the engine into an
// immediate, attributable error; the error is deferred to Run (the
// builder methods keep their fluent OpID signatures) and the offending
// call returns InvalidOp.
func (s *Sim) checkGPU(g int) bool {
	if g < 0 || g >= s.cfg.NumGPUs {
		if s.addErr == nil {
			s.addErr = fmt.Errorf("gpusim: gpu %d out of range [0,%d)", g, s.cfg.NumGPUs)
		}
		return false
	}
	return true
}

// AddKernel schedules a GPU kernel on gpu.
func (s *Sim) AddKernel(gpu int, k Kernel, opts ...OpOption) OpID {
	if !s.checkGPU(gpu) {
		return InvalidOp
	}
	d := k.Demand.Clamp()
	o := &op{
		name:         k.Name,
		tag:          k.Tag,
		gpu:          gpu,
		isKernel:     true,
		overheadLeft: k.overhead(),
		workLeft:     math.Max(k.Work, 0),
	}
	if d.SM > 0 {
		o.demands = append(o.demands, demandSpec{resSM, gpu, d.SM})
	}
	if d.MemBW > 0 {
		o.demands = append(o.demands, demandSpec{resBW, gpu, d.MemBW})
	}
	return s.add(o, opts...)
}

// AddComm schedules a point-to-point transfer of bytes from GPU src to
// GPU dst over the NVLink fabric.
func (s *Sim) AddComm(name string, src, dst int, bytes float64, opts ...OpOption) OpID {
	if !s.checkGPU(src) || !s.checkGPU(dst) {
		return InvalidOp
	}
	if src == dst {
		// Device-local "transfer": a D2D copy through DRAM, charged at
		// the GPU's memory bandwidth and contending with kernels for it.
		// (It used to be a flat 0.5 µs regardless of size, which made
		// data-locality mappings unrealistically free; 0.5 µs remains as
		// the copy-launch latency floor.)
		work := bytes / (s.cfg.DramGBs * 1e3)
		if work < 0.5 {
			work = 0.5
		}
		o := &op{
			name:     name,
			tag:      "comm",
			gpu:      src,
			workLeft: work,
			demands:  []demandSpec{{resBW, src, 1}},
		}
		return s.add(o, opts...)
	}
	work := bytes / (s.cfg.LinkGBs * 1e3) // µs at full link speed
	o := &op{
		name:     name,
		tag:      "comm",
		gpu:      src,
		workLeft: work,
		demands: []demandSpec{
			{resLinkOut, src, 1},
			{resLinkIn, dst, 1},
		},
	}
	// A cross-node transfer additionally occupies both endpoints' fabric
	// links: it leaves the source node's uplink and enters the
	// destination node's. The demand is the flow's NVLink rate expressed
	// in fabric-link units, so a slower fabric (FabricGBs < LinkGBs)
	// saturates below one flow and slows it even alone.
	if s.numFabric > 0 && s.nodeOf[src] != s.nodeOf[dst] {
		o.demands = append(o.demands,
			demandSpec{resFabric, s.nodeOf[src], s.fabricShare},
			demandSpec{resFabric, s.nodeOf[dst], s.fabricShare},
		)
	}
	return s.add(o, opts...)
}

// AddLinkBusy schedules an op that occupies GPU g's links for the time a
// collective of the given per-GPU byte volume would take. Collectives
// (all-to-all, all-reduce) are expressed as one such op per participant.
func (s *Sim) AddLinkBusy(name string, g int, bytes float64, opts ...OpOption) OpID {
	if !s.checkGPU(g) {
		return InvalidOp
	}
	work := bytes / (s.cfg.LinkGBs * 1e3)
	o := &op{
		name:     name,
		tag:      "comm",
		gpu:      g,
		workLeft: work,
		demands: []demandSpec{
			{resLinkOut, g, 1},
			{resLinkIn, g, 1},
		},
	}
	// Under a multi-node topology a collective participant's traffic is
	// partly cross-node: with all-to-all-style uniform peering, the
	// fraction of g's peers outside its node is (N−k)/(N−1) for a node
	// of k GPUs. That share of the flow transits g's node fabric link.
	if s.numFabric > 0 && s.cfg.NumGPUs > 1 {
		node := s.nodeOf[g]
		frac := float64(s.cfg.NumGPUs-s.nodeSize[node]) / float64(s.cfg.NumGPUs-1)
		if frac > 0 {
			o.demands = append(o.demands, demandSpec{resFabric, node, frac * s.fabricShare})
		}
	}
	return s.add(o, opts...)
}

// AddHostCopy schedules a host-to-device copy of bytes onto GPU g's copy
// engine (the data-preparation transfer of §6.3).
func (s *Sim) AddHostCopy(name string, g int, bytes float64, opts ...OpOption) OpID {
	if !s.checkGPU(g) {
		return InvalidOp
	}
	work := bytes / (s.cfg.CopyGBs * 1e3)
	o := &op{
		name:     name,
		tag:      "hostcopy",
		gpu:      g,
		workLeft: work,
		demands:  []demandSpec{{resCopy, g, 1}},
	}
	return s.add(o, opts...)
}

// AddCPU schedules host-side work taking micros µs on `workers` CPU
// workers out of the host pool.
func (s *Sim) AddCPU(name string, micros float64, workers int, opts ...OpOption) OpID {
	if workers < 1 {
		workers = 1
	}
	frac := float64(workers) / float64(s.cfg.HostCores)
	if frac > 1 {
		frac = 1
	}
	o := &op{
		name:     name,
		tag:      "cpu",
		gpu:      -1,
		workLeft: micros,
		demands:  []demandSpec{{resCPU, 0, frac}},
	}
	return s.add(o, opts...)
}

// AddBarrier schedules a zero-duration synchronization op.
func (s *Sim) AddBarrier(name string, opts ...OpOption) OpID {
	o := &op{name: name, tag: "sync", gpu: -1}
	return s.add(o, opts...)
}

// NumOps returns the number of ops added so far.
func (s *Sim) NumOps() int { return len(s.ops) }
