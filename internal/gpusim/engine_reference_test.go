package gpusim

import (
	"fmt"
	"math"
	"sort"
)

// This file preserves the discrete-event engine exactly as it stood
// before the dense-resource-index optimization: resource factors are
// rebuilt from scratch into fresh maps on every event and utilization
// accumulators are reallocated per segment. It is the executable
// specification for TestGoldenEquivalence — the optimized Run must
// produce bit-identical Results on every DAG. The only mechanical
// adaptation from the original is iterating the op's demand slice
// instead of the former map[resKey]float64: each op holds at most one
// demand per resource, so every accumulation cell still receives its
// contributions in the same (running-slice) order and the float math is
// unchanged.

type refResKey struct {
	kind resKind
	gpu  int
}

type refFactorKey struct {
	res  refResKey
	prio int
}

// referenceRun executes the accumulated op DAG with the pre-optimization
// event loop. Like Run, it may only be called once per Sim.
func referenceRun(s *Sim) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("gpusim: Sim.Run called twice")
	}
	s.ran = true

	// Wire the DAG.
	for _, o := range s.ops {
		seen := make(map[OpID]bool, len(o.deps))
		for _, d := range o.deps {
			if d < 0 || int(d) >= len(s.ops) {
				return nil, fmt.Errorf("gpusim: op %q depends on unknown op %d", o.name, d)
			}
			if d == o.id {
				return nil, fmt.Errorf("gpusim: op %q depends on itself", o.name)
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			s.ops[d].children = append(s.ops[d].children, o.id)
			o.missing++
		}
	}

	res := &Result{
		Ops:    make([]OpResult, len(s.ops)),
		Util:   make([][]UtilSegment, s.cfg.NumGPUs),
		byName: make(map[string][]int),
	}

	now := 0.0
	var running []*op
	done := 0

	// Time-varying capacities, mirroring the optimized engine: the same
	// compiled step function, the same boundary clamping of dt, the same
	// application point. With no windows caps is all-1.0 and capEvents
	// empty, reproducing the pre-perturbation engine exactly.
	caps, capEvents := compileCapWindows(s)
	capIdx := 0

	start := func(o *op) {
		o.state = opLaunching
		o.start = now
		if o.overheadLeft <= timeEps {
			o.state = opRunning
		}
		running = append(running, o)
	}
	for _, o := range s.ops {
		if o.missing == 0 {
			start(o)
		}
	}

	speeds := make([]float64, len(s.ops))
	for done < len(s.ops) {
		if len(running) == 0 {
			return nil, fmt.Errorf("gpusim: deadlock — %d ops pending with no runnable op (dependency cycle?)", len(s.ops)-done)
		}

		// Resource factors for ops in the work phase.
		factors := refResourceFactors(s, running, caps)

		// Per-op speed and the next event horizon.
		dt := math.Inf(1)
		for _, o := range running {
			switch o.state {
			case opLaunching:
				speeds[o.id] = 1
				if o.overheadLeft/1 < dt {
					dt = o.overheadLeft
				}
			case opRunning:
				sp := 1.0
				for _, d := range o.demands {
					if d.val <= 0 {
						continue
					}
					rk := refResKey{d.kind, d.gpu}
					if f, ok := factors[refFactorKey{rk, o.priority}]; ok && f < sp {
						sp = f
					}
				}
				if sp < minSpeed {
					sp = minSpeed
				}
				speeds[o.id] = sp
				if rem := o.workLeft / sp; rem < dt {
					dt = rem
				}
			}
		}
		if dt < 0 {
			dt = 0
		}
		if math.IsInf(dt, 1) {
			dt = 0 // only zero-work ops are running; complete them now
		}
		if capIdx < len(capEvents) {
			if lim := capEvents[capIdx].t - now; lim < dt {
				dt = lim
				if dt < 0 {
					dt = 0
				}
			}
		}

		// Record utilization for this segment.
		if dt > timeEps {
			refRecordUtil(s, res, now, now+dt, running, factors)
		}

		// Advance and retire.
		now += dt
		for capIdx < len(capEvents) && capEvents[capIdx].t <= now+timeEps {
			for _, ch := range capEvents[capIdx].changes {
				caps[ch.idx] = ch.cap
			}
			capIdx++
		}
		next := running[:0]
		var finished []*op
		for _, o := range running {
			switch o.state {
			case opLaunching:
				o.overheadLeft -= dt
				if o.overheadLeft <= timeEps {
					o.overheadLeft = 0
					o.state = opRunning
					if o.workLeft <= timeEps {
						finished = append(finished, o)
						continue
					}
				}
				next = append(next, o)
			case opRunning:
				o.workLeft -= dt * speeds[o.id]
				if o.workLeft <= timeEps {
					finished = append(finished, o)
					continue
				}
				next = append(next, o)
			}
		}
		running = next
		for _, o := range finished {
			o.state = opDone
			o.end = now
			done++
			res.Ops[o.id] = OpResult{ID: o.id, Name: o.name, Tag: o.tag, GPU: o.gpu, Start: o.start, End: o.end}
			res.byName[o.name] = append(res.byName[o.name], int(o.id))
			for _, c := range o.children {
				child := s.ops[c]
				child.missing--
				if child.missing == 0 && child.state == opPending {
					start(child)
				}
			}
		}
	}
	res.Makespan = now
	return res, nil
}

// refResourceFactors computes, for every (resource, priority level) with
// at least one running user, the slowdown factor its users receive —
// rebuilding the full map on every call, as the pre-optimization engine
// did. caps holds the current per-resource capacities in the dense
// kind-major layout (all 1.0 absent perturbation windows).
func refResourceFactors(s *Sim, running []*op, caps []float64) map[refFactorKey]float64 {
	type level struct {
		prio int
		load float64
	}
	byRes := make(map[refResKey][]level)
	for _, o := range running {
		if o.state != opRunning {
			continue
		}
		for _, d := range o.demands {
			if d.val <= 0 {
				continue
			}
			rk := refResKey{d.kind, d.gpu}
			levels := byRes[rk]
			found := false
			for i := range levels {
				if levels[i].prio == o.priority {
					levels[i].load += d.val
					found = true
					break
				}
			}
			if !found {
				levels = append(levels, level{prio: o.priority, load: d.val})
			}
			byRes[rk] = levels
		}
	}

	out := make(map[refFactorKey]float64)
	for rk, levels := range byRes {
		cap := caps[resIndex(rk.kind, rk.gpu, s.cfg.NumGPUs)]
		switch s.cfg.Policy {
		case PrioritySpace:
			sort.Slice(levels, func(i, j int) bool { return levels[i].prio > levels[j].prio })
			remaining := cap
			for i, lv := range levels {
				f := 1.0
				if lv.load > remaining {
					if remaining <= 0 {
						f = 0
					} else {
						f = remaining / lv.load
					}
					remaining = 0
				} else {
					remaining -= lv.load
					// Lower priorities see the burst-inflated SM
					// footprint of this level, not its time average.
					if rk.kind == resSM && i < len(levels)-1 {
						burst := lv.load * (PriorityBurstFactor - 1)
						if burst > remaining {
							remaining = 0
						} else {
							remaining -= burst
						}
					}
				}
				out[refFactorKey{rk, lv.prio}] = f
			}
		default: // FairShare: one factor for everyone on the resource
			total := 0.0
			for _, lv := range levels {
				total += lv.load
			}
			f := 1.0
			if total > cap {
				f = math.Pow(cap/total, ContentionExponent)
			}
			for _, lv := range levels {
				out[refFactorKey{rk, lv.prio}] = f
			}
		}
	}
	return out
}

// refRecordUtil appends one utilization segment per GPU covering [t0,t1).
func refRecordUtil(s *Sim, res *Result, t0, t1 float64, running []*op, factors map[refFactorKey]float64) {
	type acc struct {
		sm, bw float64
		tagSM  map[string]float64
	}
	accs := make([]acc, s.cfg.NumGPUs)
	hostCPU := 0.0
	for _, o := range running {
		if o.state != opRunning {
			continue
		}
		for _, d := range o.demands {
			if d.kind == resCPU {
				hostCPU += d.val * factors[refFactorKey{refResKey{d.kind, d.gpu}, o.priority}]
			}
		}
		if o.gpu < 0 {
			continue
		}
		for _, d := range o.demands {
			f := factors[refFactorKey{refResKey{d.kind, d.gpu}, o.priority}]
			grant := d.val * f
			switch d.kind {
			case resSM:
				accs[d.gpu].sm += grant
				if accs[d.gpu].tagSM == nil {
					accs[d.gpu].tagSM = make(map[string]float64)
				}
				accs[d.gpu].tagSM[o.tag] += grant
			case resBW:
				accs[d.gpu].bw += grant
			}
		}
	}
	if hostCPU > 1 {
		hostCPU = 1
	}
	if n := len(res.HostUtil); n > 0 && res.HostUtil[n-1].End == t0 && res.HostUtil[n-1].CPU == hostCPU {
		res.HostUtil[n-1].End = t1
	} else {
		res.HostUtil = append(res.HostUtil, HostSegment{Start: t0, End: t1, CPU: hostCPU})
	}
	for g := 0; g < s.cfg.NumGPUs; g++ {
		seg := UtilSegment{Start: t0, End: t1, SM: math.Min(accs[g].sm, 1), MemBW: math.Min(accs[g].bw, 1), TagSM: accs[g].tagSM}
		// Merge with the previous segment when nothing changed, to keep
		// timelines compact.
		if n := len(res.Util[g]); n > 0 {
			prev := &res.Util[g][n-1]
			if prev.End == t0 && prev.SM == seg.SM && prev.MemBW == seg.MemBW && equalTagSM(prev.TagSM, seg.TagSM) {
				prev.End = t1
				continue
			}
		}
		res.Util[g] = append(res.Util[g], seg)
	}
}
