package gpusim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// ResultDigest hashes every observable field of a Result, including the
// exact bit patterns of all floats, so two results digest equal iff
// they are bit-identical. It is the currency of the engine-equivalence
// harness: the golden-digest suite pins 64 seeded DAGs against files
// captured from the pre-optimization engine, and the verify.sh shard
// smoke step compares a sharded run's digest against a sequential one.
// (Events is deliberately excluded: it is a diagnostic counter, not an
// observable of the simulated timeline, and the committed golden files
// predate it.)
func ResultDigest(r *Result) string {
	h := sha256.New()
	f := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	str := func(s string) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	f(r.Makespan)
	for _, op := range r.Ops {
		str(op.Name)
		str(op.Tag)
		f(float64(op.GPU))
		f(op.Start)
		f(op.End)
	}
	for g := range r.Util {
		f(float64(len(r.Util[g])))
		for _, seg := range r.Util[g] {
			f(seg.Start)
			f(seg.End)
			f(seg.SM)
			f(seg.MemBW)
			tags := make([]string, 0, len(seg.TagSM))
			for t := range seg.TagSM {
				tags = append(tags, t)
			}
			sort.Strings(tags)
			for _, t := range tags {
				str(t)
				f(seg.TagSM[t])
			}
		}
	}
	f(float64(len(r.HostUtil)))
	for _, seg := range r.HostUtil {
		f(seg.Start)
		f(seg.End)
		f(seg.CPU)
	}
	return hex.EncodeToString(h.Sum(nil))
}
