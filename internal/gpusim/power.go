package gpusim

// Energy accounting. The paper's motivation is power: "the data storage
// and input preprocessing nodes account for over 50% of power
// consumption in [Meta's] data centers, surpassing even the power usage
// of GPU trainers" (§2.1). The simulator therefore integrates a simple
// utilization-proportional power model over its timelines so the
// evaluation can compare the energy cost of CPU-tier preprocessing
// against RAP's leftover-GPU approach.

// PowerModel maps utilization to electrical power (watts).
type PowerModel struct {
	// GPUIdleW is one GPU's idle draw.
	GPUIdleW float64
	// GPUSMW is the additional draw of a fully busy SM array.
	GPUSMW float64
	// GPUMemW is the additional draw of fully utilized HBM.
	GPUMemW float64
	// HostIdleW is the host's base draw (board, DRAM, NICs).
	HostIdleW float64
	// HostCoreW is the additional draw per fully busy host worker.
	HostCoreW float64
}

// DefaultPowerModel is an A100-DGX-class calibration: a 400 W TDP GPU
// split into idle/compute/memory shares and a dual-socket host.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		GPUIdleW:  60,
		GPUSMW:    240,
		GPUMemW:   100,
		HostIdleW: 150,
		HostCoreW: 8,
	}
}

// EnergyReport is the integrated energy of one simulation.
type EnergyReport struct {
	// GPUJoules is the summed energy of all GPUs over the makespan.
	GPUJoules float64
	// HostJoules is the host CPU tier's energy over the makespan.
	HostJoules float64
	// MakespanUs is the integration window.
	MakespanUs float64
}

// Total returns GPU + host energy.
func (e EnergyReport) Total() float64 { return e.GPUJoules + e.HostJoules }

// AvgGPUWatts returns the mean power draw across all GPUs combined.
func (e EnergyReport) AvgGPUWatts() float64 {
	if e.MakespanUs <= 0 {
		return 0
	}
	return e.GPUJoules / (e.MakespanUs * 1e-6)
}

// AvgHostWatts returns the host tier's mean draw.
func (e EnergyReport) AvgHostWatts() float64 {
	if e.MakespanUs <= 0 {
		return 0
	}
	return e.HostJoules / (e.MakespanUs * 1e-6)
}

// Energy integrates the power model over the result's utilization
// timelines. numGPUs should match the simulated cluster; a count
// exceeding the recorded timelines is clamped (the idle draw of GPUs
// the result never saw cannot be reconstructed), matching the
// zero-value behavior of the other query methods.
func (r *Result) Energy(pm PowerModel, numGPUs, hostCores int) EnergyReport {
	rep := EnergyReport{MakespanUs: r.Makespan}
	if numGPUs > len(r.Util) {
		numGPUs = len(r.Util)
	}
	for g := 0; g < numGPUs; g++ {
		joules := pm.GPUIdleW * r.Makespan * 1e-6
		for _, seg := range r.Util[g] {
			dt := (seg.End - seg.Start) * 1e-6
			joules += (pm.GPUSMW*seg.SM + pm.GPUMemW*seg.MemBW) * dt
		}
		rep.GPUJoules += joules
	}
	rep.HostJoules = pm.HostIdleW * r.Makespan * 1e-6
	for _, seg := range r.HostUtil {
		dt := (seg.End - seg.Start) * 1e-6
		rep.HostJoules += pm.HostCoreW * float64(hostCores) * seg.CPU * dt
	}
	return rep
}

// HostSegment is a span of constant host-CPU utilization.
type HostSegment struct {
	Start, End float64
	// CPU is the granted fraction of the host pool in [0,1].
	CPU float64
}
