package gpusim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// goldenSeeds is the number of randomized DAGs the equivalence suite
// replays. The acceptance bar is ≥50; a few extra cost nothing.
const goldenSeeds = 64

// buildGoldenDAG constructs a seeded random op DAG exercising every op
// kind (kernels, point-to-point comm, collectives, host copies, CPU ops,
// barriers), both share policies, priorities, streams and explicit
// fan-in dependencies. It must stay byte-for-byte stable: the committed
// golden digests were produced from these exact DAGs.
func buildGoldenDAG(seed int64) *Sim {
	rng := rand.New(rand.NewSource(seed))
	gpus := 1 + rng.Intn(4)
	cfg := ClusterConfig{
		NumGPUs:   gpus,
		LinkGBs:   100 + float64(rng.Intn(3))*100,
		CopyGBs:   10 + float64(rng.Intn(3))*10,
		HostCores: 8 + rng.Intn(3)*28,
	}
	if seed%2 == 0 {
		cfg.Policy = FairShare
	} else {
		cfg.Policy = PrioritySpace
	}
	s := NewSim(cfg)

	n := 60 + rng.Intn(80)
	var ids []OpID
	opts := func() []OpOption {
		var o []OpOption
		if rng.Intn(2) == 0 {
			o = append(o, WithStream(fmt.Sprintf("s%d", rng.Intn(5))))
		}
		if len(ids) > 0 && rng.Intn(3) == 0 {
			o = append(o, WithDeps(ids[rng.Intn(len(ids))]))
		}
		if rng.Intn(3) == 0 {
			o = append(o, WithPriority(rng.Intn(3)))
		}
		if rng.Intn(5) == 0 {
			o = append(o, WithTag(fmt.Sprintf("t%d", rng.Intn(3))))
		}
		return o
	}
	for i := 0; i < n; i++ {
		var id OpID
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // kernels dominate real DAGs
			k := Kernel{
				Name:   fmt.Sprintf("k%d", i),
				Work:   rng.Float64() * 80,
				Demand: Demand{SM: rng.Float64(), MemBW: rng.Float64()},
				Tag:    "train",
			}
			switch rng.Intn(3) {
			case 0:
				k.LaunchOverhead = -1
			case 1:
				k.LaunchOverhead = 1 + rng.Float64()*6
			}
			if rng.Intn(4) == 0 {
				k.Work = 0 // zero-work kernels stress the dt=0 path
			}
			id = s.AddKernel(rng.Intn(gpus), k, opts()...)
		case 5:
			src, dst := rng.Intn(gpus), rng.Intn(gpus)
			id = s.AddComm(fmt.Sprintf("c%d", i), src, dst, rng.Float64()*2e6, opts()...)
		case 6:
			id = s.AddLinkBusy(fmt.Sprintf("l%d", i), rng.Intn(gpus), rng.Float64()*2e6, opts()...)
		case 7:
			id = s.AddHostCopy(fmt.Sprintf("h%d", i), rng.Intn(gpus), rng.Float64()*5e5, opts()...)
		case 8:
			id = s.AddCPU(fmt.Sprintf("p%d", i), rng.Float64()*60, 1+rng.Intn(16), opts()...)
		default:
			id = s.AddBarrier(fmt.Sprintf("b%d", i), opts()...)
		}
		ids = append(ids, id)
	}
	return s
}

// digestResult is the test-local alias of the exported ResultDigest
// (digest.go); the golden files were captured through this path.
func digestResult(r *Result) string { return ResultDigest(r) }

func goldenDigestPath() string {
	return filepath.Join("testdata", fmt.Sprintf("golden_digests_%s.json", runtime.GOARCH))
}

// TestGoldenDigests replays the seeded DAGs and compares the bit-exact
// result digests against the file captured from the pre-optimization
// engine. Regenerate with GPUSIM_UPDATE_GOLDEN=1 (only legitimate when
// intentionally changing simulator semantics).
func TestGoldenDigests(t *testing.T) {
	digests := make([]string, goldenSeeds)
	for seed := 0; seed < goldenSeeds; seed++ {
		res, err := buildGoldenDAG(int64(seed)).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		digests[seed] = digestResult(res)
	}
	path := goldenDigestPath()
	if os.Getenv("GPUSIM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(digests, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(digests), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		// Digests are arch-specific (float codegen differs across
		// architectures); absence on a new platform is not a failure.
		t.Skipf("no golden digest file for %s: %v", runtime.GOARCH, err)
	}
	var want []string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(digests) {
		t.Fatalf("golden file has %d digests, want %d (regenerate with GPUSIM_UPDATE_GOLDEN=1)", len(want), len(digests))
	}
	for seed, d := range digests {
		if d != want[seed] {
			t.Errorf("seed %d: result digest %s != golden %s (engine results changed)", seed, d[:12], want[seed][:12])
		}
	}
}
