package gpusim

import (
	"fmt"
	"math"
	"testing"
)

// soloKernel adds a zero-overhead kernel with the given demand.
func soloKernel(s *Sim, name string, work float64, d Demand) OpID {
	return s.AddKernel(0, Kernel{Name: name, Work: work, LaunchOverhead: -1, Demand: d})
}

func TestThrottleWindowSlowsKernel(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := soloKernel(s, "k", 100, Demand{SM: 1})
	if err := s.AddCapacityWindow(ResSM, 0, 0, 1e6, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Demand 1.0 against capacity 0.5: the fair-share law gives speed
	// (0.5/1.0)^φ for the whole run.
	want := 100 / math.Pow(0.5, ContentionExponent)
	almost(t, res.OpByID(id).Latency(), want, 1e-6, "throttled kernel")
}

func TestThrottleWindowBoundary(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := soloKernel(s, "k", 100, Demand{SM: 1})
	if err := s.AddCapacityWindow(ResSM, 0, 0, 50, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Throttled until t=50 (speed 0.5^φ), then full speed: the window
	// boundary must split the integration exactly at t=50.
	slow := math.Pow(0.5, ContentionExponent)
	want := 50 + (100 - 50*slow)
	almost(t, res.OpByID(id).Latency(), want, 1e-6, "kernel spanning window boundary")
}

func TestDeferredWindowUnaffectedBefore(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := soloKernel(s, "k", 100, Demand{SM: 1})
	if err := s.AddCapacityWindow(ResSM, 0, 200, 300, 0.25); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.OpByID(id).Latency(), 100, 1e-9, "kernel finishing before the window")
}

func TestOverlappingWindowsMultiply(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	id := soloKernel(s, "k", 100, Demand{SM: 1})
	if err := s.AddCapacityWindow(ResSM, 0, 0, 1e6, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCapacityWindow(ResSM, 0, 0, 1e6, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 100 / math.Pow(0.4, ContentionExponent)
	almost(t, res.OpByID(id).Latency(), want, 1e-6, "multiplied overlapping windows")
}

func TestLinkWindowSlowsComm(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2, LinkGBs: 100})
	id := s.AddComm("xfer", 0, 1, 1e6) // 10 µs solo
	if err := s.AddCapacityWindow(ResLinkOut, 0, 0, 1e6, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 10 / math.Pow(0.5, ContentionExponent)
	almost(t, res.OpByID(id).Latency(), want, 1e-6, "comm over degraded link")
}

func TestHostStallWindowSlowsCPU(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1, HostCores: 4})
	id := s.AddCPU("prep", 100, 4) // full pool
	if err := s.AddCapacityWindow(ResHostCPU, 0, 0, 1e6, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 100 / math.Pow(0.5, ContentionExponent)
	almost(t, res.OpByID(id).Latency(), want, 1e-6, "CPU op during host stall")
}

// TestScaleOneWindowBitIdentical pins the zero-perturbation guarantee:
// a window that scales capacity by 1.0 emits no step events and cannot
// move a single bit of the result.
func TestScaleOneWindowBitIdentical(t *testing.T) {
	build := func(withWindow bool) *Sim {
		s := buildGoldenDAG(7)
		if withWindow {
			if err := s.AddCapacityWindow(ResSM, 0, 10, 500, 1.0); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	plain, err := build(false).Run()
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := build(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if digestResult(plain) != digestResult(windowed) {
		t.Fatal("scale-1.0 window changed the result bits")
	}
}

func TestCapacityWindowValidation(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 2})
	cases := []struct {
		name string
		err  error
	}{
		{"bad class", s.AddCapacityWindow(ResourceClass(99), 0, 0, 10, 0.5)},
		{"gpu out of range", s.AddCapacityWindow(ResSM, 2, 0, 10, 0.5)},
		{"negative gpu", s.AddCapacityWindow(ResMemBW, -1, 0, 10, 0.5)},
		{"empty interval", s.AddCapacityWindow(ResSM, 0, 10, 10, 0.5)},
		{"inverted interval", s.AddCapacityWindow(ResSM, 0, 20, 10, 0.5)},
		{"scale above 1", s.AddCapacityWindow(ResSM, 0, 0, 10, 1.5)},
		{"scale NaN", s.AddCapacityWindow(ResSM, 0, 0, 10, math.NaN())},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := s.AddCapacityWindow(ResHostCPU, 99, 0, 10, 0.5); err != nil {
		t.Errorf("host window must ignore gpu index: %v", err)
	}
}

func TestInjectStragglersDeterministic(t *testing.T) {
	build := func() *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 2})
		for i := 0; i < 40; i++ {
			s.AddKernel(i%2, Kernel{Name: "k", Work: 10, LaunchOverhead: -1, Demand: Demand{SM: 0.4}})
		}
		s.AddBarrier("b") // non-kernels must not consume rng draws
		return s
	}
	run := func(seed int64) (int, string) {
		s := build()
		n, err := s.InjectStragglers(seed, 0.5, 3.0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return n, digestResult(res)
	}
	n1, d1 := run(42)
	n2, d2 := run(42)
	if n1 == 0 || n1 == 40 {
		t.Fatalf("degenerate straggler selection: %d of 40", n1)
	}
	if n1 != n2 || d1 != d2 {
		t.Fatalf("same seed diverged: %d/%d kernels, digests %s vs %s", n1, n2, d1[:12], d2[:12])
	}
	_, d3 := run(43)
	if d1 == d3 {
		t.Fatal("different seeds produced identical perturbations")
	}
}

func TestInjectStragglersValidation(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	soloKernel(s, "k", 10, Demand{SM: 0.5})
	if _, err := s.InjectStragglers(1, -0.1, 2); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := s.InjectStragglers(1, 0.5, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if n, err := s.InjectStragglers(1, 0, 2); err != nil || n != 0 {
		t.Errorf("prob 0: n=%d err=%v", n, err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InjectStragglers(1, 0.5, 2); err == nil {
		t.Error("injection after Run accepted")
	}
}

// TestPerturbedEquivalence replays perturbed versions of the golden
// DAGs through both engines: the fast engine's incremental capacity
// handling must stay bit-identical to the reference rebuild.
func TestPerturbedEquivalence(t *testing.T) {
	perturb := func(s *Sim, seed int64) {
		gpus := s.Config().NumGPUs
		windows := []struct {
			rc    ResourceClass
			gpu   int
			t0    float64
			t1    float64
			scale float64
		}{
			{ResSM, int(seed) % gpus, 20, 400, 0.5},
			{ResMemBW, int(seed) % gpus, 100, 300, 0.7},
			{ResLinkOut, (int(seed) + 1) % gpus, 0, 250, 0.4},
			{ResLinkIn, (int(seed) + 1) % gpus, 0, 250, 0.4},
			{ResCopyEngine, int(seed+2) % gpus, 50, 150, 0.6},
			{ResHostCPU, 0, 30, 500, 0.5},
		}
		for _, w := range windows {
			if err := s.AddCapacityWindow(w.rc, w.gpu, w.t0, w.t1, w.scale); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.InjectStragglers(seed, 0.3, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(0); seed < 16; seed++ {
		fast := buildGoldenDAG(seed)
		perturb(fast, seed)
		got, err := fast.Run()
		if err != nil {
			t.Fatalf("seed %d: optimized engine: %v", seed, err)
		}
		ref := buildGoldenDAG(seed)
		perturb(ref, seed)
		want, err := referenceRun(ref)
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", seed, err)
		}
		compareResults(t, int(seed), got, want)
	}
}

// TestCapacityWindowDegenerateInputs pins the documented semantics of
// the remaining degenerate-input classes: NaN endpoints and negative
// scales are rejected, a negative t0 clamps to 0, and a zero-length
// window stays rejected even with the clamp (t0 < 0, t1 == 0).
func TestCapacityWindowDegenerateInputs(t *testing.T) {
	s := NewSim(ClusterConfig{NumGPUs: 1})
	rejected := []struct {
		name string
		err  error
	}{
		{"nan t0", s.AddCapacityWindow(ResSM, 0, math.NaN(), 10, 0.5)},
		{"nan t1", s.AddCapacityWindow(ResSM, 0, 0, math.NaN(), 0.5)},
		{"negative scale", s.AddCapacityWindow(ResSM, 0, 0, 10, -0.1)},
		{"clamped to empty", s.AddCapacityWindow(ResSM, 0, -5, 0, 0.5)},
	}
	for _, c := range rejected {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Negative t0 clamps: [-50, 50)@0.5 must behave exactly like
	// [0, 50)@0.5.
	run := func(t0 float64) float64 {
		s := NewSim(ClusterConfig{NumGPUs: 1})
		id := soloKernel(s, "k", 100, Demand{SM: 1})
		if err := s.AddCapacityWindow(ResSM, 0, t0, 50, 0.5); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.OpByID(id).Latency()
	}
	if a, b := run(-50), run(0); math.Float64bits(a) != math.Float64bits(b) {
		t.Errorf("clamped window latency %v != explicit-zero window %v", a, b)
	}
}

// TestOverlappingWindowsShardedIdentical runs partially-overlapping
// windows (distinct boundary instants, multiplied interior) on a DAG
// large enough for real sharding, through every engine configuration:
// the overlap semantics must be bit-identical under sharding.
func TestOverlappingWindowsShardedIdentical(t *testing.T) {
	build := func() *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 4})
		for i := 0; i < 3*shardMinOps; i++ {
			g := i % 4
			s.AddKernel(g, Kernel{
				Name:   fmt.Sprintf("k%d", i),
				Work:   20 + float64(i%7)*5,
				Demand: Demand{SM: 0.7, MemBW: 0.3},
			}, WithStream(fmt.Sprintf("g%d", g)))
		}
		s.AddComm("x", 0, 3, 2e6) // cross-shard coupling
		for g := 0; g < 4; g++ {
			// Same resource, staggered overlap: [10,120)@0.8 x [60,200)@0.5.
			if err := s.AddCapacityWindow(ResSM, g, 10, 120, 0.8); err != nil {
				t.Fatal(err)
			}
			if err := s.AddCapacityWindow(ResSM, g, 60, 200, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddCapacityWindow(ResHostCPU, 0, 0, 100, 0.6); err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := build()
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := ResultDigest(want)
	for _, shards := range []int{2, 4} {
		s := build()
		s.SetEngineOptions(EngineOptions{Shards: shards, NoRace: true})
		got, err := s.Run()
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if d := ResultDigest(got); d != wantDigest {
			t.Errorf("shards %d: overlap digest %s != sequential %s", shards, d[:12], wantDigest[:12])
		}
	}
}
