package gpusim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// runGoldenWith replays one (optionally chaos-perturbed) golden DAG
// under the given engine options.
func runGoldenWith(t *testing.T, seed int64, chaos bool, opt EngineOptions) *Result {
	t.Helper()
	s := buildGoldenDAG(seed)
	if chaos {
		if err := perturbGoldenDAG(s, seed); err != nil {
			t.Fatalf("seed %d: perturb: %v", seed, err)
		}
	}
	s.SetEngineOptions(opt)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d (shards %d): %v", seed, opt.Shards, err)
	}
	return res
}

// TestShardedGoldenEquivalence is the tentpole gate: every golden DAG —
// plain and chaos-perturbed — through shard counts {1,2,4,8} must be
// bit-identical to the sequential engine, field by field and by digest,
// including the event count (the engines replay the same trajectory).
// Shard counts above a DAG's GPU count exercise the clamp.
func TestShardedGoldenEquivalence(t *testing.T) {
	for _, chaos := range []bool{false, true} {
		seeds := goldenSeeds
		if chaos {
			seeds = chaosGoldenSeeds
		}
		for seed := 0; seed < seeds; seed++ {
			want := runGoldenWith(t, int64(seed), chaos, EngineOptions{})
			wantDigest := ResultDigest(want)
			for _, shards := range []int{1, 2, 4, 8} {
				got := runGoldenWith(t, int64(seed), chaos, EngineOptions{Shards: shards, NoRace: true})
				compareResults(t, seed, got, want)
				if got.Events != want.Events {
					t.Errorf("seed %d shards %d chaos %v: %d events != sequential %d",
						seed, shards, chaos, got.Events, want.Events)
				}
				if d := ResultDigest(got); d != wantDigest {
					t.Errorf("seed %d shards %d chaos %v: digest %s != sequential %s",
						seed, shards, chaos, d[:12], wantDigest[:12])
				}
			}
		}
	}
}

// TestShardedParallelExecutor forces the multi-worker executor (spin
// barriers, persistent workers) by raising GOMAXPROCS, and re-checks
// bit-identity. Under -race this is what exercises the barrier's
// happens-before edges.
func TestShardedParallelExecutor(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, chaos := range []bool{false, true} {
		for seed := 0; seed < 12; seed++ {
			want := runGoldenWith(t, int64(seed), chaos, EngineOptions{})
			for _, shards := range []int{2, 4} {
				got := runGoldenWith(t, int64(seed), chaos, EngineOptions{Shards: shards, NoRace: true})
				compareResults(t, seed, got, want)
			}
		}
	}
}

// TestRacedRunEquivalence exercises the default raced path (sharded vs
// sequential-on-a-clone, first finisher wins): whichever engine wins,
// the Result must be bit-identical to a plain sequential run.
func TestRacedRunEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	for _, chaos := range []bool{false, true} {
		for seed := 0; seed < 12; seed++ {
			want := runGoldenWith(t, int64(seed), chaos, EngineOptions{})
			got := runGoldenWith(t, int64(seed), chaos, EngineOptions{Shards: 4})
			compareResults(t, seed, got, want)
		}
	}
}

// TestShardFallbacks pins the effectiveShards resolution: requests are
// clamped to the GPU count, and DAGs below shardMinOps run sequential.
func TestShardFallbacks(t *testing.T) {
	small := NewSim(ClusterConfig{NumGPUs: 4})
	for i := 0; i < shardMinOps-1; i++ {
		small.AddKernel(i%4, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.5}})
	}
	small.SetEngineOptions(EngineOptions{Shards: 4})
	if got := small.effectiveShards(); got != 1 {
		t.Errorf("small DAG: effectiveShards = %d, want 1", got)
	}

	big := NewSim(ClusterConfig{NumGPUs: 2})
	for i := 0; i < 2*shardMinOps; i++ {
		big.AddKernel(i%2, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.5}})
	}
	big.SetEngineOptions(EngineOptions{Shards: 8})
	if got := big.effectiveShards(); got != 2 {
		t.Errorf("8-shard request on 2 GPUs: effectiveShards = %d, want 2", got)
	}
}

// TestShardedDeadlockParity: a dependency cycle must produce the exact
// same error through every engine.
func TestShardedDeadlockParity(t *testing.T) {
	build := func() *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 2})
		for i := 0; i < 2*shardMinOps; i++ {
			s.AddKernel(i%2, Kernel{Name: "k", Work: 5, Demand: Demand{SM: 0.4}})
		}
		a := s.AddKernel(0, Kernel{Name: "cyc-a", Work: 1, Demand: Demand{SM: 0.1}})
		b := s.AddKernel(1, Kernel{Name: "cyc-b", Work: 1, Demand: Demand{SM: 0.1}}, WithDeps(a))
		s.ops[a].deps = append(s.ops[a].deps, b)
		return s
	}
	_, seqErr := build().Run()
	if seqErr == nil {
		t.Fatal("sequential engine accepted a dependency cycle")
	}
	for _, shards := range []int{2, 8} {
		s := build()
		s.SetEngineOptions(EngineOptions{Shards: shards, NoRace: true})
		_, err := s.Run()
		if err == nil || err.Error() != seqErr.Error() {
			t.Errorf("shards %d: deadlock error %q != sequential %q", shards, err, seqErr)
		}
	}
}

// TestStopFlagCancels pins the raced-path cancellation contract: an
// engine whose stop flag is set aborts with errEngineCancelled.
func TestStopFlagCancels(t *testing.T) {
	build := func() *Sim {
		s := NewSim(ClusterConfig{NumGPUs: 2})
		for i := 0; i < 2*shardMinOps; i++ {
			s.AddKernel(i%2, Kernel{Name: "k", Work: 10, Demand: Demand{SM: 0.5}})
		}
		s.ran = true // direct engine construction below; no deps to wire
		return s
	}
	stop := new(atomic.Bool)
	stop.Store(true)
	if _, err := newShardedEngine(build(), 2, stop).run(); err != errEngineCancelled {
		t.Errorf("sharded engine: err = %v, want errEngineCancelled", err)
	}
	eng := newEngine(build())
	eng.stop = stop
	if _, err := eng.run(); err != errEngineCancelled {
		t.Errorf("sequential engine: err = %v, want errEngineCancelled", err)
	}
}

// TestShardedCrossDetection: point-to-point comm between GPUs of
// different shards is the only cross-shard coupling; DAGs without it
// must fuse the factors/speeds phases (cross == false).
func TestShardedCrossDetection(t *testing.T) {
	local := NewSim(ClusterConfig{NumGPUs: 4})
	for i := 0; i < shardMinOps; i++ {
		local.AddKernel(i%4, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.5}})
	}
	local.AddComm("same-shard", 0, 1, 1e6) // GPUs 0,1 share a shard at 2 shards
	local.AddCPU("host", 10, 4)
	local.ran = true
	if e := newShardedEngine(local, 2, nil); e.cross {
		t.Error("DAG without cross-shard comm flagged cross")
	}

	remote := NewSim(ClusterConfig{NumGPUs: 4})
	for i := 0; i < shardMinOps; i++ {
		remote.AddKernel(i%4, Kernel{Name: "k", Work: 1, Demand: Demand{SM: 0.5}})
	}
	remote.AddComm("cross-shard", 0, 3, 1e6)
	remote.ran = true
	if e := newShardedEngine(remote, 2, nil); !e.cross {
		t.Error("cross-shard comm not detected")
	}
}
