// Online training: the full end-to-end loop the paper targets — raw
// batches stream in, the preprocessing plan actually transforms them on
// the CPU (every Table 1 operator executes for real), and a hybrid-
// parallel DLRM (replicated MLPs + sharded embedding tables with real
// all-to-all and all-reduce exchanges) trains on the outputs while the
// simulator accounts the co-running timeline.
//
//	go run ./examples/online_training
package main

import (
	"fmt"
	"log"

	"rap/internal/gpusim"
	"rap/internal/rap"
)

func main() {
	const (
		workers     = 4
		globalBatch = 256
		iterations  = 150
	)
	// Criteo-Terabyte shapes with preprocessing Plan 2 (the feature-
	// generation-heavy plan: NGram, OneHot and Bucketize create 20 new
	// embedding tables on top of the 52 raw sparse features).
	w, err := rap.NewWorkload(rap.Terabyte, 2, 4096, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online training on %s/%s: %d ops, %d raw features -> %d tables\n",
		w.Dataset, w.Plan.Name, w.Plan.NumOps(), w.Plan.NumDense+w.Plan.NumSparse, w.Plan.NumTables)

	// Verify the plan's semantics on real data first: every model input
	// column exists, ids are within each table's hash range, dense
	// outputs are NaN-free.
	if err := rap.VerifyPlanSemantics(w, 128, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan semantics verified on a real batch")

	// Timing view: what throughput does RAP sustain on 4 GPUs?
	f := rap.New(w, gpusim.ClusterConfig{NumGPUs: workers})
	plan, err := f.BuildPlan(rap.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := f.Execute(plan, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated co-running: %.0f samples/s (%.1f%% of ideal)\n",
		stats.Throughput, 100*stats.Throughput/f.IdealThroughput())

	// Functional view: actually train. Plan 0 (Criteo Kaggle) carries a
	// learnable synthetic signal; the model is shrunk (narrow MLPs,
	// small embedding dim) so the CPU run finishes quickly, while the
	// preprocessing plan is the real thing.
	kaggle, err := rap.NewWorkload(rap.Kaggle, 0, 4096, 7)
	if err != nil {
		log.Fatal(err)
	}
	fw := kaggle.ShrinkForFunctional()
	out, err := rap.RunFunctionalLR(fw, workers, globalBatch, iterations, 7, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional hybrid-parallel training (%d workers, global batch %d):\n", workers, globalBatch)
	const window = 30
	for i := 0; i+window <= len(out.Losses); i += window {
		var mean float32
		for _, l := range out.Losses[i : i+window] {
			mean += l
		}
		fmt.Printf("  iters %3d-%3d  mean loss %.4f\n", i, i+window-1, mean/window)
	}
	fmt.Printf("data-parallel replicas in sync: %v\n", out.InSync)
}
