// Custom pipeline: author your own preprocessing DAG with the public
// operator set, inspect what the MILP horizontal-fusion planner and
// Algorithm 1 decide for it, and execute it on real data.
//
//	go run ./examples/custom_pipeline
package main

import (
	"fmt"
	"log"

	"rap/internal/costmodel"
	"rap/internal/data"
	"rap/internal/dlrm"
	"rap/internal/fusion"
	"rap/internal/gpusim"
	"rap/internal/preproc"
	"rap/internal/sched"
)

func main() {
	// Build three preprocessing graphs by hand. Two share a structure
	// (FillNull -> SigridHash -> FirstX) so their ops can fuse
	// horizontally; the third generates a new feature with NGram.
	chain := func(name, col string, table int) *preproc.Graph {
		g := &preproc.Graph{Name: name}
		g.Ops = []preproc.Op{
			preproc.NewFillNullSparse(name+"/fn", col, col+".fn", 0),
			preproc.NewSigridHash(name+"/sh", col+".fn", col+".sh", 100_000),
			preproc.NewFirstX(name+"/fx", col+".sh", col+".fx", 16),
		}
		g.Outputs = []preproc.GraphOutput{{Table: table, Col: col + ".fx"}}
		return g
	}
	g0 := chain("clicks", "cat_0", 0)
	g1 := chain("categories", "cat_1", 1)
	g2 := &preproc.Graph{Name: "cross"}
	g2.Ops = []preproc.Op{
		preproc.NewFillNullSparse("cross/fn", "cat_2", "cat_2.fn", 0),
		preproc.NewNGram("cross/ng", []string{"cat_2.fn"}, "cat_2.ng", 2, 50_000),
		preproc.NewClamp("cross/cp", "cat_2.ng", "cat_2.cp", 0, 49_999),
	}
	g2.Outputs = []preproc.GraphOutput{{Table: 2, Col: "cat_2.cp"}}
	graphs := []*preproc.Graph{g0, g1, g2}

	// Fusion: the MILP solver merges the two identical chains level-wise.
	shape := preproc.Shape{Samples: 4096, AvgListLen: 3}
	plan, err := fusion.PlanFusion(graphs, shape, fusion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion: %d ops -> %d kernels (objective %d, optimal %v)\n",
		plan.NumOps, plan.NumKernels, plan.Objective, plan.Optimal)
	for _, step := range plan.Steps {
		for i, k := range step.Kernels {
			fmt.Printf("  step %d: %-28s fuses %v\n", step.Index, k.Name, step.OpIDs[i])
		}
	}

	// Schedule the fused kernels against a small DLRM's profiled stage
	// capacities (Algorithm 1).
	model := dlrm.TerabyteConfig([]int64{100_000, 100_000, 50_000}, 4096)
	pl := dlrm.PlaceTables(model.TableSizes, 1)
	caps, err := costmodel.EstimateCapacities(model, pl, 0, gpusim.ClusterConfig{NumGPUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := costmodel.NewCostModel(costmodel.AnalyticPredictor(), caps)
	if err != nil {
		log.Fatal(err)
	}
	schedule, err := sched.CoRunSchedule(plan, cm, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: %d kernels (%d shards), predicted exposed latency %.1f us\n",
		schedule.TotalKernels(), schedule.NumShards, schedule.PredictedExposed)
	for s, ks := range schedule.PerStage {
		if len(ks) == 0 {
			continue
		}
		fmt.Printf("  overlap %-12s with %d kernel(s)\n", caps[s].Name, len(ks))
	}

	// And the graphs are runnable: transform a real batch.
	gen := data.NewGenerator(data.GenConfig{NumDense: 1, NumSparse: 3, Seed: 11})
	batch := gen.NextBatch(8)
	for _, g := range graphs {
		if err := g.Apply(batch); err != nil {
			log.Fatal(err)
		}
	}
	out := batch.SparseByName("cat_2.cp")
	fmt.Printf("\nreal data: NGram+Clamp produced %d crossed ids for 8 samples, e.g. row 0 = %v\n",
		out.NNZ(), out.Row(0))
}
