// Skewed mapping: the Figure 12 scenario as a program. A preprocessing
// plan whose first features carry much heavier graphs breaks the two
// straightforward mapping heuristics in different ways — data-parallel
// mapping pays input communication, data-locality mapping overloads the
// GPUs hosting the hot tables — while RAP's joint search rebalances with
// bounded communication.
//
//	go run ./examples/skewed_mapping
package main

import (
	"fmt"
	"log"

	"rap/internal/gpusim"
	"rap/internal/mapping"
	"rap/internal/rap"
)

func main() {
	const gpus = 4
	w, err := rap.SkewedWorkload(8, 4096, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed workload: %d sparse features, first 8 carry extra NGram work (%d tables)\n\n",
		w.Plan.NumSparse, w.Plan.NumTables)

	for _, strategy := range []rap.MappingStrategy{rap.MapDataParallel, rap.MapDataLocality, rap.MapRAP} {
		f := rap.New(w, gpusim.ClusterConfig{NumGPUs: gpus})
		p, err := f.BuildPlan(rap.BuildOptions{Strategy: strategy})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := f.Execute(p, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s mapping: throughput %8.0f samples/s  imbalance %.2f  comm %8.0f B/batch  moves %d\n",
			p.Mapping.Strategy, stats.Throughput, p.Mapping.Imbalance(), p.Mapping.TotalComm(), p.Mapping.Moves)
		for g := 0; g < gpus; g++ {
			fmt.Printf("      gpu%d: %5.0f us preprocessing work, %2d graphs\n",
				g, mapping.TotalWork(p.Mapping.PerGPU[g]), len(p.Mapping.PerGPU[g]))
		}
	}
	fmt.Println("\nRAP trades a little communication for balance, keeping the bottleneck GPU fed.")
}
