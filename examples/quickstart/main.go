// Quickstart: build a RAP co-running plan for online DLRM training and
// compare its simulated throughput against running preprocessing
// sequentially — the paper's headline experiment in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rap/internal/gpusim"
	"rap/internal/rap"
)

func main() {
	// 1. A workload bundles the synthetic Criteo-shaped data generator,
	//    the DLRM model (Table 2) and the preprocessing plan (Table 3).
	w, err := rap.NewWorkload(rap.Terabyte, 1, 4096, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s/%s — %d preprocessing ops feeding %d embedding tables\n",
		w.Dataset, w.Plan.Name, w.Plan.NumOps(), w.Plan.NumTables)

	// 2. The framework runs RAP's online pass: overlapping-capacity
	//    estimation, joint graph mapping, MILP horizontal fusion and the
	//    resource-aware co-run schedule (Algorithm 1).
	cluster := gpusim.ClusterConfig{NumGPUs: 4}
	f := rap.New(w, cluster)
	plan, err := f.BuildPlan(rap.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d fused kernels on GPU 0 (from %d ops), predicted exposed latency %.0f us\n",
		plan.Fusions[0].NumKernels, plan.Fusions[0].NumOps, plan.TotalPredictedExposed())

	// 3. Execute the pipelined co-running plan on the simulated cluster.
	rapStats, err := f.Execute(plan, 12)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare with fully exposed (sequential) preprocessing.
	seqPlan, err := f.BuildPlan(rap.BuildOptions{SequentialPreproc: true, NoFusion: true,
		Strategy: rap.MapDataParallel, NaiveSchedule: true, NoInterleave: true})
	if err != nil {
		log.Fatal(err)
	}
	seqStats, err := f.Execute(seqPlan, 12)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequential preprocessing: %8.0f samples/s\n", seqStats.Throughput)
	fmt.Printf("RAP co-running:           %8.0f samples/s  (%.2fx speedup)\n",
		rapStats.Throughput, rapStats.Throughput/seqStats.Throughput)
	fmt.Printf("ideal (no preprocessing): %8.0f samples/s  (RAP reaches %.1f%%)\n",
		f.IdealThroughput(), 100*rapStats.Throughput/f.IdealThroughput())
}
