// Fleet quickstart: schedule a seeded multi-tenant job trace onto a
// hierarchical fleet (GPUs grouped into NVSwitch nodes joined by an
// oversubscribed inter-node fabric), compare RAP-aware packing against
// naive first-fit placement, and show what a single split allocation
// pays on the shared fabric.
//
//	go run ./examples/cluster_fleet
package main

import (
	"fmt"
	"log"

	"rap/internal/cluster"
	"rap/internal/rap"
	"rap/internal/topo"
)

func main() {
	// 1. The fleet: 8 NVSwitch nodes of 8 GPUs. Within a node GPUs talk
	//    at full NVLink rate; between nodes traffic shares one 100 GB/s
	//    uplink per node, oversubscribed 4x.
	fleet := topo.Uniform(8, 8)
	fleet.FabricGBs = 100
	fleet.Oversub = 4
	fmt.Printf("fleet: %s\n\n", fleet)

	// 2. A seeded trace of DLRM training jobs: mixed datasets,
	//    preprocessing plans and sizes (2-16 GPUs), Poisson arrivals.
	//    The same seed always yields the same trace.
	jobs, err := cluster.GenerateJobs(cluster.GenConfig{
		Seed: 7, NumJobs: 24, MeanGapUs: 1500, MaxGPUs: fleet.NumGPUs(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d jobs, first %s/plan%d on %d GPUs, last arrival t=%.1f ms\n\n",
		len(jobs), jobs[0].Shape.Dataset, jobs[0].Shape.PlanIdx,
		jobs[0].Shape.GPUs, jobs[len(jobs)-1].ArrivalUs/1e3)

	// 3. Schedule the identical trace under both placement policies.
	//    Every job is planned by the real RAP planner (one cached plan
	//    per shape) and simulated on its slice of the fleet, with
	//    co-tenant fabric congestion composed in as capacity windows.
	for _, pol := range []cluster.Policy{cluster.Pack{}, cluster.FirstFit{}} {
		sim, err := cluster.New(cluster.Config{Topo: fleet, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Simulate(jobs)
		if err != nil {
			log.Fatal(err)
		}
		split := 0
		for _, jr := range rep.Results {
			if jr.Nodes > 1 {
				split++
			}
		}
		fmt.Printf("%-10s avg JCT %8.1f ms   makespan %8.1f ms   util %5.1f%%   split jobs %d/%d\n",
			rep.Policy, rep.AvgJCTUs/1e3, rep.MakespanUs/1e3, 100*rep.GPUUtil, split, rep.Jobs)
		fmt.Printf("%-10s report digest %s (bit-stable across reruns)\n",
			"", rep.Digest()[:16])
	}

	// 4. Why packing wins: the same 4-GPU job, whole on one node vs
	//    split 2+2 across the fabric.
	whole, err := jobDuration(fleet, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	splitDur, err := jobDuration(fleet, []int{0, 1, 8, 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none 4-GPU job, packed on a node: %8.1f ms\n", whole/1e3)
	fmt.Printf("same job split across 2 nodes:  %8.1f ms  (%.2fx slower: all-to-all\n"+
		"    exchange crosses the oversubscribed fabric)\n",
		splitDur/1e3, splitDur/whole)
}

// pinned is a tiny custom Policy: it always places on a fixed GPU set,
// showing how pluggable placement is.
type pinned []int

func (pinned) Name() string { return "pinned" }

func (p pinned) Place(v *cluster.FleetView, want int) []int {
	if want != len(p) {
		return nil
	}
	for _, g := range p {
		if !v.Free[g] {
			return nil
		}
	}
	return []int(p)
}

// jobDuration runs one 4-GPU Kaggle job alone on the given GPUs and
// returns its duration in us.
func jobDuration(fleet *topo.Topology, gpus []int) (float64, error) {
	sim, err := cluster.New(cluster.Config{Topo: fleet, Policy: pinned(gpus)})
	if err != nil {
		return 0, err
	}
	rep, err := sim.Simulate([]cluster.Job{{
		ID: 0, Shape: cluster.JobShape{
			Dataset: rap.Kaggle, PlanIdx: 0, PerGPUBatch: 2048, GPUs: len(gpus), Iterations: 24,
		},
	}})
	if err != nil {
		return 0, err
	}
	return rep.Results[0].EndUs - rep.Results[0].StartUs, nil
}
