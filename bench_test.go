// Package rap_test holds the paper-reproduction benchmark harness: one
// testing.B benchmark per evaluation table and figure (see DESIGN.md §3
// for the index). Each benchmark regenerates its artifact and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The heavyweight full grids live
// behind -bench=Full.
package rap_test

import (
	"testing"

	"rap/internal/baselines"
	"rap/internal/experiments"
	"rap/internal/fusion"
	"rap/internal/gpusim"
	"rap/internal/rap"
)

// BenchmarkFigure1a regenerates the training-utilization trace.
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IterLatency, "iter_us")
	}
}

// BenchmarkFigure1b regenerates the NGram-size utilization study.
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].SMUtil*100, "max_sm_util_pct")
	}
}

// BenchmarkFigure1c regenerates the MLP/NGram contention study.
func BenchmarkFigure1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1c()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].StretchFactor, "max_stretch_x")
	}
}

// BenchmarkFigure5 regenerates the latency-abstraction validation.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "probes")
	}
}

// BenchmarkTable5 trains and evaluates the latency predictor (Table 5).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, acc := range r.Accuracy {
			if acc < worst {
				worst = acc
			}
		}
		b.ReportMetric(worst*100, "worst_cat_acc_pct")
	}
}

// BenchmarkFigure9 runs the reduced end-to-end throughput grid; the
// paper's full grid is BenchmarkFigure9Full.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(experiments.QuickFigure9())
		if err != nil {
			b.Fatal(err)
		}
		sp := r.Speedups()
		b.ReportMetric(sp[baselines.SystemSequential], "rap_vs_sequential_x")
		b.ReportMetric(sp[baselines.SystemIdeal], "rap_vs_ideal_x")
	}
}

// BenchmarkFigure9Full runs the paper's full grid: plans 0-3 × batch
// {4096, 8192} × {2,4,8} GPUs × six systems. Slow (minutes).
func BenchmarkFigure9Full(b *testing.B) {
	if testing.Short() {
		b.Skip("full grid is slow")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(experiments.DefaultFigure9())
		if err != nil {
			b.Fatal(err)
		}
		sp := r.Speedups()
		b.ReportMetric(sp[baselines.SystemSequential], "rap_vs_sequential_x")
		b.ReportMetric(sp[baselines.SystemStream], "rap_vs_stream_x")
		b.ReportMetric(sp[baselines.SystemMPS], "rap_vs_mps_x")
		b.ReportMetric(sp[baselines.SystemTorchArrow], "rap_vs_torcharrow_x")
		b.ReportMetric(sp[baselines.SystemIdeal], "rap_vs_ideal_x")
	}
}

// BenchmarkFigure10 runs the ablation breakdown on plan 1.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10([]int{1}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GapFromIdeal()*100, "rap_gap_from_ideal_pct")
	}
}

// BenchmarkFigure10Full runs the paper's plans 1-3 on 8 GPUs.
func BenchmarkFigure10Full(b *testing.B) {
	if testing.Short() {
		b.Skip("full breakdown is slow")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10([]int{1, 2, 3}, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GapFromIdeal()*100, "rap_gap_from_ideal_pct")
	}
}

// BenchmarkFigure11 sweeps the added-NGram workload (reduced sweep) and
// derives Table 4 from the same run.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11([]int{0, 32, 96}, 2)
		if err != nil {
			b.Fatal(err)
		}
		t4 := experiments.Table4(r)
		b.ReportMetric(t4.Rows[experiments.F11RAP].SMUtil*100, "rap_sm_util_pct")
	}
}

// BenchmarkFigure11Full runs the paper-scale sweep on 4 GPUs.
func BenchmarkFigure11Full(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep is slow")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(nil, 4)
		if err != nil {
			b.Fatal(err)
		}
		tp := r.TurningPoint[experiments.F11RAP]
		if tp < 0 {
			tp = len(r.Sweep)
		}
		b.ReportMetric(float64(tp), "rap_turning_idx")
	}
}

// BenchmarkFigure12 runs the mapping-adaptability study.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Reduction(rap.MapDataParallel), "exposed_reduction_vs_dp_x")
		b.ReportMetric(r.Reduction(rap.MapDataLocality), "exposed_reduction_vs_dl_x")
	}
}

// BenchmarkPlanSearch measures RAP's online optimization pass itself
// (capacity profiling + mapping search + MILP fusion + Algorithm 1) —
// the cost the paper's §10 calls "lightweight, taking only minutes" at
// datacenter scale.
func BenchmarkPlanSearch(b *testing.B) {
	w, err := rap.NewWorkload(rap.Terabyte, 1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := rap.New(w, clusterCfg(4))
		if _, err := f.BuildPlan(rap.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalStep measures one real hybrid-parallel training
// step including full preprocessing (data-level, small model).
func BenchmarkFunctionalStep(b *testing.B) {
	w, err := rap.NewWorkload(rap.Kaggle, 0, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	fw := w.ShrinkForFunctional()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rap.RunFunctional(fw, 2, 64, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// clusterCfg builds the standard benchmark cluster.
func clusterCfg(gpus int) gpusim.ClusterConfig {
	return gpusim.ClusterConfig{NumGPUs: gpus, HostCores: 48}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationFusionSolver compares the MILP branch & bound against
// the level-greedy warm start on the per-GPU fusion problems of plan 2:
// reported metric is the mean objective improvement (Σ degree²).
func BenchmarkAblationFusionSolver(b *testing.B) {
	w, err := rap.NewWorkload(rap.Terabyte, 2, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	shape := w.Plan.Shape(4096)
	// One GPU's share of the graphs.
	graphs := w.Plan.Graphs[:len(w.Plan.Graphs)/4]
	for i := 0; i < b.N; i++ {
		milpPlan, err := fusion.PlanFusion(graphs, shape, fusion.Options{})
		if err != nil {
			b.Fatal(err)
		}
		greedy, err := fusion.PlanFusion(graphs, shape, fusion.Options{GreedyOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		if milpPlan.Objective < greedy.Objective {
			b.Fatalf("MILP (%d) worse than greedy (%d)", milpPlan.Objective, greedy.Objective)
		}
		b.ReportMetric(float64(milpPlan.Objective), "milp_objective")
		b.ReportMetric(float64(greedy.Objective), "greedy_objective")
	}
}

// BenchmarkAblationInterleaving measures §6.3 inter-batch workload
// interleaving on/off (plan 1, 4 GPUs).
func BenchmarkAblationInterleaving(b *testing.B) {
	w, err := rap.NewWorkload(rap.Terabyte, 1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f := rap.New(w, clusterCfg(4))
		on, err := f.BuildPlan(rap.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		onStats, err := f.Execute(on, 10)
		if err != nil {
			b.Fatal(err)
		}
		off, err := f.BuildPlan(rap.BuildOptions{NoInterleave: true})
		if err != nil {
			b.Fatal(err)
		}
		offStats, err := f.Execute(off, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(onStats.Throughput/offStats.Throughput, "interleave_gain_x")
	}
}

// BenchmarkAblationSharding measures resource-aware kernel sharding
// on/off (plan 2, 4 GPUs): without sharding, fused kernels that exceed a
// stage's headroom cannot be placed and are exposed.
func BenchmarkAblationSharding(b *testing.B) {
	w, err := rap.NewWorkload(rap.Terabyte, 2, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f := rap.New(w, clusterCfg(4))
		on, err := f.BuildPlan(rap.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		onStats, err := f.Execute(on, 10)
		if err != nil {
			b.Fatal(err)
		}
		off, err := f.BuildPlan(rap.BuildOptions{NoSharding: true})
		if err != nil {
			b.Fatal(err)
		}
		offStats, err := f.Execute(off, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(onStats.Throughput/offStats.Throughput, "sharding_gain_x")
	}
}

// BenchmarkAblationCapacitySafety sweeps nothing at runtime (the safety
// factor is a compile-time constant) but quantifies how close the
// capacity estimator's budget is to what the executed pipeline actually
// hides, validating the §5 cost model end to end.
func BenchmarkAblationCostModelFidelity(b *testing.B) {
	w, err := rap.NewWorkload(rap.Terabyte, 1, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f := rap.New(w, clusterCfg(4))
		p, err := f.BuildPlan(rap.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := f.Execute(p, 10)
		if err != nil {
			b.Fatal(err)
		}
		predicted := p.TotalPredictedExposed()
		actual := stats.SteadyIterLatency - stats.TrainOnlyLatency
		if actual < 0 {
			actual = 0
		}
		b.ReportMetric(predicted, "predicted_exposed_us")
		b.ReportMetric(actual, "actual_exposed_us")
	}
}

// BenchmarkPowerStudy regenerates the §2.1 power-motivation study:
// energy per trained sample under CPU-tier preprocessing vs RAP.
func BenchmarkPowerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PowerStudy(1, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EnergySaving(), "energy_saving_x")
	}
}
